//! CPUID feature policy and cross-hypervisor compatibility masking.
//!
//! HERE "adjusted CPU features of the protected VM exposed by the CPUID
//! instruction on both Xen and KVM to make sure that the protected VM can
//! safely resume on the secondary hypervisor" (§7.4). This module models
//! that: each hypervisor exposes a default feature policy; before
//! replication starts, the two policies are intersected and the common
//! policy is installed on both sides, so the guest never observes a feature
//! disappearing across a failover.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A guest-visible CPU feature bit.
///
/// A condensed selection of the leaf-1/leaf-7 feature flags that real
/// heterogeneous-migration work must reconcile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CpuFeature {
    Sse42 = 0,
    Avx = 1,
    Avx2 = 2,
    Avx512f = 3,
    Aes = 4,
    Rdrand = 5,
    Rdseed = 6,
    Tsx = 7,
    Mpx = 8,
    Pku = 9,
    Xsave = 10,
    InvariantTsc = 11,
    X2apic = 12,
    Pcid = 13,
    Smep = 14,
    Smap = 15,
}

/// All feature variants, for iteration.
pub const ALL_FEATURES: [CpuFeature; 16] = [
    CpuFeature::Sse42,
    CpuFeature::Avx,
    CpuFeature::Avx2,
    CpuFeature::Avx512f,
    CpuFeature::Aes,
    CpuFeature::Rdrand,
    CpuFeature::Rdseed,
    CpuFeature::Tsx,
    CpuFeature::Mpx,
    CpuFeature::Pku,
    CpuFeature::Xsave,
    CpuFeature::InvariantTsc,
    CpuFeature::X2apic,
    CpuFeature::Pcid,
    CpuFeature::Smep,
    CpuFeature::Smap,
];

/// The CPUID policy a hypervisor exposes to a guest.
///
/// # Examples
///
/// ```
/// use here_hypervisor::cpuid::{CpuFeature, CpuidPolicy};
///
/// let xen = CpuidPolicy::xen_default();
/// let kvm = CpuidPolicy::kvm_default();
/// let common = xen.intersect(&kvm);
/// // The intersection is compatible with both sides.
/// assert!(common.is_subset_of(&xen));
/// assert!(common.is_subset_of(&kvm));
/// assert!(common.has(CpuFeature::Sse42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuidPolicy {
    /// CPU vendor string as exposed in leaf 0.
    pub vendor: String,
    /// Family/model/stepping word as exposed in leaf 1.
    pub family_model: u32,
    features: u64,
}

impl CpuidPolicy {
    /// An empty policy (no optional features).
    pub fn new(vendor: impl Into<String>, family_model: u32) -> Self {
        CpuidPolicy {
            vendor: vendor.into(),
            family_model,
            features: 0,
        }
    }

    /// The policy Xen 4.12 exposes on the testbed's Xeon Gold 6130
    /// (Skylake-SP): everything except the bits Xen masks by default.
    pub fn xen_default() -> Self {
        let mut p = CpuidPolicy::new("GenuineIntel", 0x0005_0654);
        for f in [
            CpuFeature::Sse42,
            CpuFeature::Avx,
            CpuFeature::Avx2,
            CpuFeature::Avx512f,
            CpuFeature::Aes,
            CpuFeature::Rdrand,
            CpuFeature::Rdseed,
            CpuFeature::Xsave,
            CpuFeature::InvariantTsc,
            CpuFeature::X2apic,
            CpuFeature::Pcid,
            CpuFeature::Smep,
            CpuFeature::Smap,
            CpuFeature::Tsx,
        ] {
            p.enable(f);
        }
        p
    }

    /// The policy KVM/kvmtool exposes on the same hardware. kvmtool is more
    /// conservative: no TSX (disabled after TAA), no AVX-512 (it does not
    /// manage the extended XSAVE area), but it does pass PKU through.
    pub fn kvm_default() -> Self {
        let mut p = CpuidPolicy::new("GenuineIntel", 0x0005_0654);
        for f in [
            CpuFeature::Sse42,
            CpuFeature::Avx,
            CpuFeature::Avx2,
            CpuFeature::Aes,
            CpuFeature::Rdrand,
            CpuFeature::Rdseed,
            CpuFeature::Xsave,
            CpuFeature::InvariantTsc,
            CpuFeature::X2apic,
            CpuFeature::Pcid,
            CpuFeature::Smep,
            CpuFeature::Smap,
            CpuFeature::Pku,
        ] {
            p.enable(f);
        }
        p
    }

    /// Enables `feature`.
    pub fn enable(&mut self, feature: CpuFeature) {
        self.features |= 1 << feature as u32;
    }

    /// Disables `feature`.
    pub fn disable(&mut self, feature: CpuFeature) {
        self.features &= !(1 << feature as u32);
    }

    /// `true` if `feature` is exposed.
    pub fn has(&self, feature: CpuFeature) -> bool {
        self.features & (1 << feature as u32) != 0
    }

    /// Number of exposed features.
    pub fn feature_count(&self) -> u32 {
        self.features.count_ones()
    }

    /// The greatest-common-denominator policy of `self` and `other`:
    /// identical vendor/family metadata is required; features are
    /// intersected. This is what HERE installs on both hypervisors before
    /// replication starts.
    ///
    /// # Panics
    ///
    /// Panics if the vendors differ (heterogeneous *hardware* is out of
    /// scope, as in the paper's §8.1).
    pub fn intersect(&self, other: &CpuidPolicy) -> CpuidPolicy {
        assert_eq!(
            self.vendor, other.vendor,
            "cross-vendor replication is unsupported (paper limits HERE to homogeneous hardware)"
        );
        CpuidPolicy {
            vendor: self.vendor.clone(),
            family_model: self.family_model.min(other.family_model),
            features: self.features & other.features,
        }
    }

    /// `true` if every feature of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &CpuidPolicy) -> bool {
        self.features & !other.features == 0
    }

    /// Features present in `self` but masked in `other` — the set a guest
    /// would "lose" when failing over without prior reconciliation.
    pub fn lost_versus(&self, other: &CpuidPolicy) -> Vec<CpuFeature> {
        ALL_FEATURES
            .iter()
            .copied()
            .filter(|&f| self.has(f) && !other.has(f))
            .collect()
    }
}

impl fmt::Display for CpuidPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fam {:#x} ({} features)",
            self.vendor,
            self.family_model,
            self.feature_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_differ_meaningfully() {
        let xen = CpuidPolicy::xen_default();
        let kvm = CpuidPolicy::kvm_default();
        assert!(xen.has(CpuFeature::Avx512f) && !kvm.has(CpuFeature::Avx512f));
        assert!(xen.has(CpuFeature::Tsx) && !kvm.has(CpuFeature::Tsx));
        assert!(kvm.has(CpuFeature::Pku) && !xen.has(CpuFeature::Pku));
    }

    #[test]
    fn intersection_is_commutative_and_subset() {
        let xen = CpuidPolicy::xen_default();
        let kvm = CpuidPolicy::kvm_default();
        let a = xen.intersect(&kvm);
        let b = kvm.intersect(&xen);
        assert_eq!(a, b);
        assert!(a.is_subset_of(&xen) && a.is_subset_of(&kvm));
        assert!(!a.has(CpuFeature::Avx512f));
        assert!(!a.has(CpuFeature::Pku));
    }

    #[test]
    fn lost_features_enumerates_the_gap() {
        let xen = CpuidPolicy::xen_default();
        let kvm = CpuidPolicy::kvm_default();
        let lost = xen.lost_versus(&kvm);
        assert!(lost.contains(&CpuFeature::Avx512f));
        assert!(lost.contains(&CpuFeature::Tsx));
        assert!(!lost.contains(&CpuFeature::Sse42));
        // After reconciliation nothing is lost in either direction.
        let common = xen.intersect(&kvm);
        assert!(common.lost_versus(&kvm).is_empty());
        assert!(common.lost_versus(&xen).is_empty());
    }

    #[test]
    fn enable_disable_round_trip() {
        let mut p = CpuidPolicy::new("GenuineIntel", 1);
        assert!(!p.has(CpuFeature::Avx));
        p.enable(CpuFeature::Avx);
        assert!(p.has(CpuFeature::Avx));
        p.disable(CpuFeature::Avx);
        assert!(!p.has(CpuFeature::Avx));
    }

    #[test]
    #[should_panic(expected = "cross-vendor")]
    fn cross_vendor_intersection_panics() {
        let intel = CpuidPolicy::new("GenuineIntel", 1);
        let amd = CpuidPolicy::new("AuthenticAMD", 1);
        let _ = intel.intersect(&amd);
    }
}
