//! Hypervisor identity.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which hypervisor implementation a host runs.
///
/// The whole point of HERE is that the primary and secondary values of this
/// enum *differ*: two different implementations are overwhelmingly unlikely
/// to share a DoS vulnerability (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HypervisorKind {
    /// Xen 4.12 with the xl/libxl/libxc toolstack (type-1).
    Xen,
    /// Linux KVM with the kvmtool userspace (type-2).
    Kvm,
}

impl HypervisorKind {
    /// The other kind — what a heterogeneous deployment pairs this with.
    pub fn opposite(self) -> HypervisorKind {
        match self {
            HypervisorKind::Xen => HypervisorKind::Kvm,
            HypervisorKind::Kvm => HypervisorKind::Xen,
        }
    }

    /// Lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            HypervisorKind::Xen => "xen",
            HypervisorKind::Kvm => "kvm",
        }
    }
}

impl fmt::Display for HypervisorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_an_involution() {
        for k in [HypervisorKind::Xen, HypervisorKind::Kvm] {
            assert_ne!(k.opposite(), k);
            assert_eq!(k.opposite().opposite(), k);
        }
    }
}
