//! Architecture-level guest CPU state, independent of any hypervisor.
//!
//! [`ArchRegs`] is the *ground truth* of a virtual CPU: the register values
//! the guest would observe. Each simulated hypervisor stores this truth in
//! its own incompatible layout ([`crate::vcpu::XenVcpuState`] vs
//! [`crate::vcpu::KvmVcpuState`]), which is exactly what forces the paper's
//! state translator to exist. Keeping a neutral representation lets tests
//! assert that a Xen→KVM translation preserved every architectural value.

use serde::{Deserialize, Serialize};

/// Number of general-purpose registers tracked (x86-64: RAX..R15).
pub const GPR_COUNT: usize = 16;

/// Indices into [`ArchRegs::gprs`] in *architectural* (instruction encoding)
/// order. Both hypervisor formats permute this order differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

/// A segment register (selector + cached descriptor), simplified to the
/// fields both hypervisors serialise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// Segment selector.
    pub selector: u16,
    /// Segment base address.
    pub base: u64,
    /// Segment limit.
    pub limit: u32,
    /// Access-rights / attribute byte(s).
    pub attributes: u16,
}

/// Control, debug and model-specific register state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct SystemRegs {
    /// CR0 — protection enable, paging, etc.
    pub cr0: u64,
    /// CR2 — page-fault linear address.
    pub cr2: u64,
    /// CR3 — page-table base.
    pub cr3: u64,
    /// CR4 — feature control.
    pub cr4: u64,
    /// EFER MSR — long mode, NX.
    pub efer: u64,
    /// IA32_APIC_BASE MSR.
    pub apic_base: u64,
    /// SYSENTER/SYSCALL MSR block, condensed.
    pub star: u64,
    /// LSTAR MSR (64-bit syscall entry).
    pub lstar: u64,
    /// GS base for the kernel (KERNEL_GS_BASE MSR).
    pub kernel_gs_base: u64,
}

/// The complete architectural register file of one virtual CPU.
///
/// # Examples
///
/// ```
/// use here_hypervisor::arch::{ArchRegs, Gpr};
///
/// let mut regs = ArchRegs::reset_state();
/// regs.set_gpr(Gpr::Rax, 0x1234);
/// assert_eq!(regs.gpr(Gpr::Rax), 0x1234);
/// assert_eq!(regs.rip, 0xfff0); // x86 reset vector offset
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct ArchRegs {
    /// General-purpose registers in architectural order.
    pub gprs: [u64; GPR_COUNT],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: u64,
    /// Code/data/stack and auxiliary segments.
    pub cs: Segment,
    /// Data segment.
    pub ds: Segment,
    /// Extra segment.
    pub es: Segment,
    /// FS segment.
    pub fs: Segment,
    /// GS segment.
    pub gs: Segment,
    /// Stack segment.
    pub ss: Segment,
    /// Task register.
    pub tr: Segment,
    /// Control/debug/MSR state.
    pub system: SystemRegs,
    /// Guest TSC value at the moment of capture, in *cycles*.
    pub tsc: u64,
    /// Pending interrupt vector, if the vCPU was captured with one latched.
    pub pending_interrupt: Option<u8>,
}

impl ArchRegs {
    /// The register file of a freshly reset x86 vCPU.
    pub fn reset_state() -> Self {
        let mut regs = ArchRegs {
            rip: 0xfff0,
            rflags: 0x2,
            cs: Segment {
                selector: 0xf000,
                base: 0xffff_0000,
                limit: 0xffff,
                attributes: 0x9b,
            },
            ..ArchRegs::default()
        };
        regs.system.cr0 = 0x6000_0010;
        regs
    }

    /// Reads a general-purpose register.
    pub fn gpr(&self, which: Gpr) -> u64 {
        self.gprs[which as usize]
    }

    /// Writes a general-purpose register.
    pub fn set_gpr(&mut self, which: Gpr, value: u64) {
        self.gprs[which as usize] = value;
    }

    /// A quick structural checksum used by replication tests to compare
    /// register files cheaply. Not cryptographic.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for &g in &self.gprs {
            mix(g);
        }
        mix(self.rip);
        mix(self.rflags);
        for seg in [
            &self.cs, &self.ds, &self.es, &self.fs, &self.gs, &self.ss, &self.tr,
        ] {
            mix(seg.selector as u64);
            mix(seg.base);
            mix(seg.limit as u64);
            mix(seg.attributes as u64);
        }
        mix(self.system.cr0);
        mix(self.system.cr2);
        mix(self.system.cr3);
        mix(self.system.cr4);
        mix(self.system.efer);
        mix(self.system.apic_base);
        mix(self.system.star);
        mix(self.system.lstar);
        mix(self.system.kernel_gs_base);
        mix(self.tsc);
        mix(match self.pending_interrupt {
            Some(v) => 0x100 | v as u64,
            None => 0,
        });
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_matches_x86_conventions() {
        let regs = ArchRegs::reset_state();
        assert_eq!(regs.rip, 0xfff0);
        assert_eq!(regs.cs.selector, 0xf000);
        assert_eq!(regs.rflags & 0x2, 0x2);
    }

    #[test]
    fn gpr_round_trip() {
        let mut regs = ArchRegs::default();
        regs.set_gpr(Gpr::R15, 99);
        assert_eq!(regs.gpr(Gpr::R15), 99);
        assert_eq!(regs.gpr(Gpr::Rax), 0);
    }

    #[test]
    fn digest_changes_with_any_field() {
        let base = ArchRegs::reset_state();
        let mut changed = base.clone();
        changed.system.cr3 = 0x1000;
        assert_ne!(base.digest(), changed.digest());
        let mut changed2 = base.clone();
        changed2.pending_interrupt = Some(0x20);
        assert_ne!(base.digest(), changed2.digest());
    }

    #[test]
    fn digest_stable_for_equal_state() {
        let a = ArchRegs::reset_state();
        let b = ArchRegs::reset_state();
        assert_eq!(a.digest(), b.digest());
    }
}
