//! The simulated KVM host with a kvmtool-style userspace.
//!
//! KVM is a type-2 hypervisor: a kernel module accelerates guest execution,
//! and each VM is an ordinary userspace process. The paper uses **kvmtool**
//! (not QEMU) as the userspace component precisely so the two sides of the
//! replication pair share *no* device-model code — implementing HERE on
//! Xen + QEMU-KVM "would not have protected the guest from QEMU
//! vulnerabilities (e.g. CVE-2015-3456)" (§8.2). kvmtool's minimal device
//! model also gives the fast ~6 ms replica activation the paper measures in
//! Fig. 7.

use here_sim_core::rate::ByteSize;
use here_sim_core::time::SimDuration;

use crate::cpuid::CpuidPolicy;
use crate::error::{HvError, HvResult};
use crate::fault::{DosOutcome, HostHealth};
use crate::host::{HostCore, Hypervisor};
use crate::kind::HypervisorKind;
use crate::vcpu::{KvmVcpuState, VcpuId, VcpuStateBlob};
use crate::vm::{RunState, Vm, VmConfig, VmId};

/// Userspace activation cost of kvmtool's resume path (Fig. 7: ~6 ms,
/// independent of VM memory size).
pub const KVMTOOL_ACTIVATION_LATENCY: SimDuration = SimDuration::from_millis(6);

/// A kvmtool process hosting one VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvmtoolProcess {
    /// Host process id.
    pub pid: u32,
    /// The VM the process hosts.
    pub vm: VmId,
    /// Whether the process has its vhost worker threads started.
    pub vhost_started: bool,
}

/// A simulated Linux/KVM host.
///
/// # Examples
///
/// ```
/// use here_hypervisor::kvm::KvmHypervisor;
/// use here_hypervisor::host::Hypervisor;
/// use here_hypervisor::vm::VmConfig;
/// use here_sim_core::rate::ByteSize;
///
/// let mut kvm = KvmHypervisor::new(ByteSize::from_gib(192));
/// let shell = kvm.create_shell(VmConfig::new("replica", ByteSize::from_mib(64), 2)?)?;
/// assert_eq!(kvm.kvmtool_process(shell).unwrap().vm, shell);
/// # Ok::<(), here_hypervisor::error::HvError>(())
/// ```
#[derive(Debug)]
pub struct KvmHypervisor {
    core: HostCore,
    host_memory: ByteSize,
    processes: Vec<KvmtoolProcess>,
    next_pid: u32,
    ioctl_count: u64,
}

impl KvmHypervisor {
    /// Boots a KVM host with `host_memory` of physical RAM.
    pub fn new(host_memory: ByteSize) -> Self {
        KvmHypervisor {
            core: HostCore::new(HypervisorKind::Kvm, CpuidPolicy::kvm_default(), 100),
            host_memory,
            processes: Vec::new(),
            next_pid: 4242,
            ioctl_count: 0,
        }
    }

    /// Physical memory available for guests (the Linux host itself needs
    /// ~2 GiB).
    pub fn guest_memory_pool(&self) -> ByteSize {
        ByteSize::from_bytes(
            self.host_memory
                .as_bytes()
                .saturating_sub(ByteSize::from_gib(2).as_bytes()),
        )
    }

    /// The kvmtool process hosting `vm`, if any.
    pub fn kvmtool_process(&self, vm: VmId) -> Option<&KvmtoolProcess> {
        self.processes.iter().find(|p| p.vm == vm)
    }

    /// Number of simulated KVM ioctls issued (observability for tests).
    pub fn ioctl_count(&self) -> u64 {
        self.ioctl_count
    }

    /// Enables dirty logging (`KVM_SET_USER_MEMORY_REGION` with
    /// `KVM_MEM_LOG_DIRTY_PAGES`) — needed when KVM is the *primary* in a
    /// reverse-direction deployment.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    pub fn enable_dirty_log(&mut self, vm: VmId) -> HvResult<()> {
        self.ioctl_count += 1;
        self.core.vm_mut(vm)?.dirty_mut().enable_logging();
        Ok(())
    }

    /// `KVM_GET_DIRTY_LOG`: read-and-clear the dirty bitmap.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    pub fn get_dirty_log(&mut self, vm: VmId) -> HvResult<Vec<crate::memory::PageId>> {
        self.ioctl_count += 1;
        Ok(self.core.vm_mut(vm)?.dirty_mut().bitmap_mut().drain())
    }

    fn spawn_process(&mut self, vm: VmId) {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.processes.push(KvmtoolProcess {
            pid,
            vm,
            vhost_started: false,
        });
    }

    fn check_memory_pool(&self, config: &VmConfig) -> HvResult<()> {
        let in_use: u64 = self
            .core
            .vm_ids()
            .iter()
            .filter_map(|&id| self.core.vm(id).ok())
            .map(|vm| vm.config().memory.as_bytes())
            .sum();
        let pool = self.guest_memory_pool().as_bytes();
        if in_use + config.memory.as_bytes() > pool {
            return Err(HvError::InvalidConfig(format!(
                "guest pool exhausted: {} in use of {}, requested {}",
                ByteSize::from_bytes(in_use),
                ByteSize::from_bytes(pool),
                config.memory
            )));
        }
        Ok(())
    }
}

impl Hypervisor for KvmHypervisor {
    fn kind(&self) -> HypervisorKind {
        HypervisorKind::Kvm
    }

    fn health(&self) -> HostHealth {
        self.core.health()
    }

    fn inject_dos(&mut self, outcome: DosOutcome) {
        self.core.inject(outcome);
    }

    fn reboot(&mut self) {
        self.core.reboot();
        self.processes.clear();
        self.ioctl_count = 0;
    }

    fn default_cpuid(&self) -> CpuidPolicy {
        CpuidPolicy::kvm_default()
    }

    fn create_vm(&mut self, config: VmConfig) -> HvResult<VmId> {
        self.check_memory_pool(&config)?;
        let id = self.core.create(config, RunState::Running)?;
        self.spawn_process(id);
        Ok(id)
    }

    fn create_shell(&mut self, config: VmConfig) -> HvResult<VmId> {
        self.check_memory_pool(&config)?;
        let id = self.core.create(config, RunState::Shell)?;
        self.spawn_process(id);
        Ok(id)
    }

    fn destroy_vm(&mut self, vm: VmId) -> HvResult<()> {
        self.core.destroy(vm)?;
        self.processes.retain(|p| p.vm != vm);
        Ok(())
    }

    fn vm(&self, vm: VmId) -> HvResult<&Vm> {
        self.core.vm(vm)
    }

    fn vm_mut(&mut self, vm: VmId) -> HvResult<&mut Vm> {
        self.core.vm_mut(vm)
    }

    fn get_vcpu_state(&self, vm: VmId, vcpu: VcpuId) -> HvResult<VcpuStateBlob> {
        let vm = self.core.vm(vm)?;
        let v = vm.vcpu(vcpu)?;
        Ok(VcpuStateBlob::Kvm(KvmVcpuState::from_arch(
            &v.regs, v.online,
        )))
    }

    fn set_vcpu_state(&mut self, vm: VmId, vcpu: VcpuId, state: VcpuStateBlob) -> HvResult<()> {
        self.ioctl_count += 1;
        let VcpuStateBlob::Kvm(kvm_state) = state else {
            return Err(HvError::Incompatible(
                "kvm cannot load a xen-format vCPU blob; translate it first".into(),
            ));
        };
        let vm = self.core.vm_mut(vm)?;
        let v = vm.vcpu_mut(vcpu)?;
        v.online = kvm_state.online;
        v.regs = kvm_state.to_arch();
        Ok(())
    }

    fn activation_latency(&self) -> SimDuration {
        KVMTOOL_ACTIVATION_LATENCY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::PageId;

    fn kvm() -> KvmHypervisor {
        KvmHypervisor::new(ByteSize::from_gib(192))
    }

    fn small_cfg() -> VmConfig {
        VmConfig::new("t", ByteSize::from_mib(16), 4).unwrap()
    }

    #[test]
    fn each_vm_gets_a_kvmtool_process() {
        let mut kvm = kvm();
        let a = kvm.create_vm(small_cfg()).unwrap();
        let b = kvm.create_shell(small_cfg()).unwrap();
        let pa = kvm.kvmtool_process(a).unwrap().pid;
        let pb = kvm.kvmtool_process(b).unwrap().pid;
        assert_ne!(pa, pb);
        kvm.destroy_vm(a).unwrap();
        assert!(kvm.kvmtool_process(a).is_none());
        assert!(kvm.kvmtool_process(b).is_some());
    }

    #[test]
    fn native_format_is_kvm() {
        let mut kvm = kvm();
        let vm = kvm.create_vm(small_cfg()).unwrap();
        let blob = kvm.get_vcpu_state(vm, VcpuId::new(2)).unwrap();
        assert!(matches!(blob, VcpuStateBlob::Kvm(_)));
        kvm.set_vcpu_state(vm, VcpuId::new(2), blob).unwrap();
    }

    #[test]
    fn xen_blob_is_rejected() {
        use crate::arch::ArchRegs;
        use crate::vcpu::XenVcpuState;
        let mut kvm = kvm();
        let vm = kvm.create_vm(small_cfg()).unwrap();
        let foreign = VcpuStateBlob::Xen(XenVcpuState::from_arch(&ArchRegs::default(), true));
        assert!(matches!(
            kvm.set_vcpu_state(vm, VcpuId::new(0), foreign),
            Err(HvError::Incompatible(_))
        ));
    }

    #[test]
    fn activation_is_faster_than_xen() {
        let kvm = kvm();
        assert!(KVMTOOL_ACTIVATION_LATENCY < crate::xen::XEN_ACTIVATION_LATENCY);
        assert_eq!(kvm.activation_latency(), KVMTOOL_ACTIVATION_LATENCY);
    }

    #[test]
    fn dirty_log_ioctls() {
        let mut kvm = kvm();
        let vm = kvm.create_vm(small_cfg()).unwrap();
        kvm.enable_dirty_log(vm).unwrap();
        kvm.vm_mut(vm)
            .unwrap()
            .guest_write(PageId::new(11), VcpuId::new(0))
            .unwrap();
        assert_eq!(kvm.get_dirty_log(vm).unwrap(), vec![PageId::new(11)]);
        assert!(kvm.get_dirty_log(vm).unwrap().is_empty());
        assert!(kvm.ioctl_count() >= 3);
    }

    #[test]
    fn crash_takes_down_the_whole_host() {
        let mut kvm = kvm();
        let vm = kvm.create_vm(small_cfg()).unwrap();
        kvm.inject_dos(DosOutcome::Crash);
        assert_eq!(kvm.health(), HostHealth::Crashed);
        assert!(kvm.vm(vm).is_err());
        kvm.reboot();
        assert_eq!(kvm.health(), HostHealth::Healthy);
        assert!(kvm.vm(vm).is_err(), "reboot loses VM state");
    }
}
