//! Error type shared by the hypervisor substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by hypervisor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HvError {
    /// A configuration value was rejected.
    InvalidConfig(String),
    /// A guest frame number was outside the VM's address space.
    PageOutOfRange {
        /// The offending frame number.
        page: u64,
        /// Number of frames in the address space.
        limit: u64,
    },
    /// The referenced VM does not exist on this host.
    NoSuchVm(u64),
    /// The referenced vCPU does not exist in this VM.
    NoSuchVcpu(u32),
    /// The operation is invalid in the VM's current run state.
    WrongRunState {
        /// What the caller attempted.
        op: &'static str,
        /// The state the VM was actually in.
        state: &'static str,
    },
    /// The host hypervisor is down (crashed, hung, or starved) and cannot
    /// service requests.
    HostDown(&'static str),
    /// A device operation failed.
    Device(String),
    /// The guest and host disagree on a platform capability.
    Incompatible(String),
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HvError::PageOutOfRange { page, limit } => {
                write!(
                    f,
                    "page {page} outside guest address space of {limit} pages"
                )
            }
            HvError::NoSuchVm(id) => write!(f, "no VM with id {id} on this host"),
            HvError::NoSuchVcpu(id) => write!(f, "no vCPU {id} in this VM"),
            HvError::WrongRunState { op, state } => {
                write!(f, "cannot {op} while VM is {state}")
            }
            HvError::HostDown(kind) => write!(f, "host hypervisor is down ({kind})"),
            HvError::Device(msg) => write!(f, "device error: {msg}"),
            HvError::Incompatible(msg) => write!(f, "platform incompatibility: {msg}"),
        }
    }
}

impl Error for HvError {}

/// Convenience alias for hypervisor results.
pub type HvResult<T> = Result<T, HvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = HvError::PageOutOfRange { page: 9, limit: 4 };
        assert_eq!(
            e.to_string(),
            "page 9 outside guest address space of 4 pages"
        );
        let e = HvError::WrongRunState {
            op: "pause",
            state: "destroyed",
        };
        assert!(e.to_string().contains("cannot pause"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HvError>();
    }
}
