//! Paravirtual device models and the in-guest device-switch agent.
//!
//! HERE uses a *heterogeneous device model* strategy (§5.2): the primary and
//! secondary hypervisors expose **different** device implementations to the
//! protected VM, so that a device-model vulnerability on one side does not
//! exist on the other. On failover, the secondary's device manager instructs
//! the guest (via a small kernel module, §7.6) to unplug the old PV devices
//! and plug hypervisor-native replacements that preserve the *stable
//! identity* (MAC address, disk geometry) while resetting transient ring
//! state.
//!
//! Per the paper, only paravirtual devices are supported — passthrough
//! devices cannot be replicated (§7.3).

use serde::{Deserialize, Serialize};

use crate::error::{HvError, HvResult};
use crate::kind::HypervisorKind;

/// The functional class of a virtual device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Network interface.
    Net,
    /// Block storage.
    Block,
    /// Serial console.
    Console,
}

/// A concrete device model implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceModel {
    /// Xen netfront/netback PV network device.
    XenPvNet,
    /// Xen blkfront/blkback PV block device.
    XenPvBlk,
    /// Xen PV console.
    XenConsole,
    /// virtio-net device (kvmtool).
    VirtioNet,
    /// virtio-blk device (kvmtool).
    VirtioBlk,
    /// virtio-console device (kvmtool).
    VirtioConsole,
}

impl DeviceModel {
    /// The functional class this model implements.
    pub fn class(self) -> DeviceClass {
        match self {
            DeviceModel::XenPvNet | DeviceModel::VirtioNet => DeviceClass::Net,
            DeviceModel::XenPvBlk | DeviceModel::VirtioBlk => DeviceClass::Block,
            DeviceModel::XenConsole | DeviceModel::VirtioConsole => DeviceClass::Console,
        }
    }

    /// The hypervisor family that provides this model.
    pub fn family(self) -> HypervisorKind {
        match self {
            DeviceModel::XenPvNet | DeviceModel::XenPvBlk | DeviceModel::XenConsole => {
                HypervisorKind::Xen
            }
            DeviceModel::VirtioNet | DeviceModel::VirtioBlk | DeviceModel::VirtioConsole => {
                HypervisorKind::Kvm
            }
        }
    }

    /// The model of the same class offered by `family`.
    pub fn counterpart(self, family: HypervisorKind) -> DeviceModel {
        match (self.class(), family) {
            (DeviceClass::Net, HypervisorKind::Xen) => DeviceModel::XenPvNet,
            (DeviceClass::Net, HypervisorKind::Kvm) => DeviceModel::VirtioNet,
            (DeviceClass::Block, HypervisorKind::Xen) => DeviceModel::XenPvBlk,
            (DeviceClass::Block, HypervisorKind::Kvm) => DeviceModel::VirtioBlk,
            (DeviceClass::Console, HypervisorKind::Xen) => DeviceModel::XenConsole,
            (DeviceClass::Console, HypervisorKind::Kvm) => DeviceModel::VirtioConsole,
        }
    }
}

/// Stable device identity that must survive a failover unchanged (the guest
/// would otherwise see its NIC change MAC or its disk change size).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceIdentity {
    /// A network interface.
    Net {
        /// MAC address.
        mac: [u8; 6],
        /// Maximum transmission unit.
        mtu: u16,
    },
    /// A block device.
    Block {
        /// Backend volume identifier.
        volume_id: u64,
        /// Capacity in 512-byte sectors.
        capacity_sectors: u64,
        /// Whether writes are readonly-rejected.
        read_only: bool,
    },
    /// A console (no identity beyond existing).
    Console,
}

impl DeviceIdentity {
    /// The class this identity belongs to.
    pub fn class(&self) -> DeviceClass {
        match self {
            DeviceIdentity::Net { .. } => DeviceClass::Net,
            DeviceIdentity::Block { .. } => DeviceClass::Block,
            DeviceIdentity::Console => DeviceClass::Console,
        }
    }
}

/// Transient, hypervisor-specific ring state. This is what gets *reset*
/// (not translated) on a device switch: in-flight requests are implicitly
/// replayed by the guest driver after replug.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RingState {
    /// A Xen shared-ring: producer/consumer indices for requests and
    /// responses, plus the event-channel port.
    XenRing {
        /// Request producer index.
        req_prod: u32,
        /// Request consumer index.
        req_cons: u32,
        /// Response producer index.
        rsp_prod: u32,
        /// Response consumer index.
        rsp_cons: u32,
        /// Event channel port number.
        evtchn_port: u32,
    },
    /// A virtio virtqueue: available/used indices plus negotiated features.
    Vring {
        /// Available-ring index.
        avail_idx: u16,
        /// Used-ring index.
        used_idx: u16,
        /// Negotiated VIRTIO feature bits.
        features: u64,
        /// MSI-X vector assigned to the queue.
        msix_vector: u16,
    },
}

impl RingState {
    /// A fresh (empty) ring for a device of `model`.
    pub fn fresh_for(model: DeviceModel) -> RingState {
        match model.family() {
            HypervisorKind::Xen => RingState::XenRing {
                req_prod: 0,
                req_cons: 0,
                rsp_prod: 0,
                rsp_cons: 0,
                evtchn_port: 0,
            },
            HypervisorKind::Kvm => RingState::Vring {
                avail_idx: 0,
                used_idx: 0,
                features: 0x0001_0000_0000, // VIRTIO_F_VERSION_1
                msix_vector: 0,
            },
        }
    }

    /// `true` if the ring has no in-flight work.
    pub fn is_quiescent(&self) -> bool {
        match *self {
            RingState::XenRing {
                req_prod,
                req_cons,
                rsp_prod,
                rsp_cons,
                ..
            } => req_prod == req_cons && rsp_prod == rsp_cons,
            RingState::Vring {
                avail_idx,
                used_idx,
                ..
            } => avail_idx == used_idx,
        }
    }
}

/// One attached virtual device: model + identity + ring state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceInstance {
    /// The implementing device model.
    pub model: DeviceModel,
    /// Stable identity preserved across failover.
    pub identity: DeviceIdentity,
    /// Transient ring state.
    pub ring: RingState,
}

impl DeviceInstance {
    /// Creates a device of `model` with `identity` and a fresh ring.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::Device`] if the identity's class does not match
    /// the model's class.
    pub fn new(model: DeviceModel, identity: DeviceIdentity) -> HvResult<Self> {
        if model.class() != identity.class() {
            return Err(HvError::Device(format!(
                "identity class {:?} does not match model {:?}",
                identity.class(),
                model
            )));
        }
        Ok(DeviceInstance {
            ring: RingState::fresh_for(model),
            model,
            identity,
        })
    }

    /// The equivalent device on hypervisor `family`: same identity, the
    /// family's model for the class, and a *fresh* ring (the paper's
    /// unplug-and-replug strategy — ring state is never translated).
    pub fn rehosted_for(&self, family: HypervisorKind) -> DeviceInstance {
        let model = self.model.counterpart(family);
        DeviceInstance {
            model,
            identity: self.identity.clone(),
            ring: RingState::fresh_for(model),
        }
    }

    /// Advances the ring to reflect `n` completed I/O operations.
    pub fn complete_io(&mut self, n: u32) {
        match &mut self.ring {
            RingState::XenRing {
                req_prod,
                req_cons,
                rsp_prod,
                rsp_cons,
                ..
            } => {
                *req_prod = req_prod.wrapping_add(n);
                *req_cons = req_cons.wrapping_add(n);
                *rsp_prod = rsp_prod.wrapping_add(n);
                *rsp_cons = rsp_cons.wrapping_add(n);
            }
            RingState::Vring {
                avail_idx,
                used_idx,
                ..
            } => {
                *avail_idx = avail_idx.wrapping_add(n as u16);
                *used_idx = used_idx.wrapping_add(n as u16);
            }
        }
    }
}

/// The standard PV device set the experiments attach: one NIC, one disk,
/// one console, in the given hypervisor family's native models.
pub fn standard_device_set(family: HypervisorKind) -> Vec<DeviceInstance> {
    let nic = DeviceIdentity::Net {
        mac: [0x52, 0x54, 0x00, 0x12, 0x34, 0x56],
        mtu: 1500,
    };
    let disk = DeviceIdentity::Block {
        volume_id: 1,
        capacity_sectors: 2 * 1024 * 1024 * 1024 / 512, // 2 GiB
        read_only: false,
    };
    vec![
        DeviceInstance::new(DeviceModel::XenPvNet.counterpart(family), nic)
            .expect("net identity matches net model"),
        DeviceInstance::new(DeviceModel::XenPvBlk.counterpart(family), disk)
            .expect("block identity matches block model"),
        DeviceInstance::new(
            DeviceModel::XenConsole.counterpart(family),
            DeviceIdentity::Console,
        )
        .expect("console identity matches console model"),
    ]
}

/// Events the in-guest agent (the paper's 150-line kernel module) receives
/// from the device manager.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentEvent {
    /// Safely unplug every PV device (failover step 1).
    UnplugAll,
    /// Plug a device compatible with the new hypervisor (failover step 2).
    Plug(DeviceInstance),
    /// Informational: migration/failover completed.
    MigrationComplete {
        /// The hypervisor family the guest now runs on.
        now_on: HypervisorKind,
    },
}

/// The in-guest device-switch agent.
///
/// # Examples
///
/// ```
/// use here_hypervisor::devices::{standard_device_set, AgentEvent, GuestAgent};
/// use here_hypervisor::kind::HypervisorKind;
///
/// let mut agent = GuestAgent::new(standard_device_set(HypervisorKind::Xen));
/// agent.handle(AgentEvent::UnplugAll);
/// assert_eq!(agent.devices().len(), 0);
/// for dev in standard_device_set(HypervisorKind::Kvm) {
///     agent.handle(AgentEvent::Plug(dev));
/// }
/// assert_eq!(agent.devices().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuestAgent {
    devices: Vec<DeviceInstance>,
    log: Vec<AgentEvent>,
}

impl GuestAgent {
    /// Creates an agent managing `devices`.
    pub fn new(devices: Vec<DeviceInstance>) -> Self {
        GuestAgent {
            devices,
            log: Vec::new(),
        }
    }

    /// Processes one event from the device manager.
    pub fn handle(&mut self, event: AgentEvent) {
        match &event {
            AgentEvent::UnplugAll => self.devices.clear(),
            AgentEvent::Plug(dev) => self.devices.push(dev.clone()),
            AgentEvent::MigrationComplete { .. } => {}
        }
        self.log.push(event);
    }

    /// Devices currently visible to the guest.
    pub fn devices(&self) -> &[DeviceInstance] {
        &self.devices
    }

    /// Every event received, in order (tests assert the unplug-then-plug
    /// protocol).
    pub fn event_log(&self) -> &[AgentEvent] {
        &self.log
    }

    /// The hypervisor family of the guest's current devices, if they are
    /// uniform (`None` if mixed or empty).
    pub fn device_family(&self) -> Option<HypervisorKind> {
        let first = self.devices.first()?.model.family();
        self.devices
            .iter()
            .all(|d| d.model.family() == first)
            .then_some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_classes_and_families() {
        assert_eq!(DeviceModel::XenPvNet.class(), DeviceClass::Net);
        assert_eq!(DeviceModel::VirtioBlk.class(), DeviceClass::Block);
        assert_eq!(DeviceModel::XenPvNet.family(), HypervisorKind::Xen);
        assert_eq!(DeviceModel::VirtioConsole.family(), HypervisorKind::Kvm);
    }

    #[test]
    fn counterpart_preserves_class_and_switches_family() {
        for model in [
            DeviceModel::XenPvNet,
            DeviceModel::XenPvBlk,
            DeviceModel::XenConsole,
        ] {
            let c = model.counterpart(HypervisorKind::Kvm);
            assert_eq!(c.class(), model.class());
            assert_eq!(c.family(), HypervisorKind::Kvm);
        }
    }

    #[test]
    fn identity_model_mismatch_is_rejected() {
        let err = DeviceInstance::new(DeviceModel::XenPvNet, DeviceIdentity::Console);
        assert!(matches!(err, Err(HvError::Device(_))));
    }

    #[test]
    fn rehost_preserves_identity_and_resets_ring() {
        let mut dev = DeviceInstance::new(
            DeviceModel::XenPvNet,
            DeviceIdentity::Net {
                mac: [1, 2, 3, 4, 5, 6],
                mtu: 9000,
            },
        )
        .unwrap();
        dev.complete_io(17);
        assert!(!dev.ring.is_quiescent() || matches!(dev.ring, RingState::XenRing { .. }));
        let rehosted = dev.rehosted_for(HypervisorKind::Kvm);
        assert_eq!(rehosted.model, DeviceModel::VirtioNet);
        assert_eq!(rehosted.identity, dev.identity);
        assert!(rehosted.ring.is_quiescent());
        assert!(matches!(rehosted.ring, RingState::Vring { .. }));
    }

    #[test]
    fn standard_set_has_one_of_each_class() {
        for family in [HypervisorKind::Xen, HypervisorKind::Kvm] {
            let set = standard_device_set(family);
            assert_eq!(set.len(), 3);
            assert!(set.iter().all(|d| d.model.family() == family));
            let classes: Vec<DeviceClass> = set.iter().map(|d| d.model.class()).collect();
            assert!(classes.contains(&DeviceClass::Net));
            assert!(classes.contains(&DeviceClass::Block));
            assert!(classes.contains(&DeviceClass::Console));
        }
    }

    #[test]
    fn agent_switch_protocol() {
        let mut agent = GuestAgent::new(standard_device_set(HypervisorKind::Xen));
        assert_eq!(agent.device_family(), Some(HypervisorKind::Xen));
        agent.handle(AgentEvent::UnplugAll);
        for dev in standard_device_set(HypervisorKind::Kvm) {
            agent.handle(AgentEvent::Plug(dev));
        }
        agent.handle(AgentEvent::MigrationComplete {
            now_on: HypervisorKind::Kvm,
        });
        assert_eq!(agent.device_family(), Some(HypervisorKind::Kvm));
        assert_eq!(agent.event_log().len(), 5);
        assert!(matches!(agent.event_log()[0], AgentEvent::UnplugAll));
    }

    #[test]
    fn xen_ring_io_advances_indices() {
        let mut dev = standard_device_set(HypervisorKind::Xen).remove(0);
        dev.complete_io(3);
        match dev.ring {
            RingState::XenRing {
                req_prod, rsp_prod, ..
            } => {
                assert_eq!(req_prod, 3);
                assert_eq!(rsp_prod, 3);
            }
            _ => panic!("expected xen ring"),
        }
        // Completed I/O leaves the ring quiescent (prod == cons).
        assert!(dev.ring.is_quiescent());
    }
}
