//! The simulated Xen host: a type-1 hypervisor with a Dom0 toolstack.
//!
//! Models the pieces of Xen 4.12 that HERE's implementation touches (§7):
//! domain lifecycle through the xl/libxl/libxc toolstack, the log-dirty
//! shadow-op hypercalls, per-vCPU PML harvesting, and `vcpu_guest_context`
//! state capture. Dom0 reserves memory from the host pool as in the paper's
//! testbed (10 GiB).

use here_sim_core::rate::ByteSize;
use here_sim_core::time::SimDuration;

use crate::cpuid::CpuidPolicy;
use crate::error::{HvError, HvResult};
use crate::fault::{DosOutcome, HostHealth};
use crate::host::{HostCore, Hypervisor};
use crate::kind::HypervisorKind;
use crate::memory::PageId;
use crate::vcpu::{VcpuId, VcpuStateBlob, XenVcpuState};
use crate::vm::{RunState, Vm, VmConfig, VmId};

/// Userspace activation cost of Xen's toolstack path (libxl domain unpause
/// plus device reconnect), per the Fig. 7 discussion.
pub const XEN_ACTIVATION_LATENCY: SimDuration = SimDuration::from_millis(40);

/// A simulated Xen host.
///
/// # Examples
///
/// ```
/// use here_hypervisor::xen::XenHypervisor;
/// use here_hypervisor::host::Hypervisor;
/// use here_hypervisor::vm::VmConfig;
/// use here_sim_core::rate::ByteSize;
///
/// let mut xen = XenHypervisor::new(ByteSize::from_gib(192));
/// let vm = xen.create_vm(VmConfig::new("web", ByteSize::from_mib(64), 2)?)?;
/// assert!(xen.vm(vm)?.vcpus().len() == 2);
/// # Ok::<(), here_hypervisor::error::HvError>(())
/// ```
#[derive(Debug)]
pub struct XenHypervisor {
    core: HostCore,
    host_memory: ByteSize,
    dom0_memory: ByteSize,
    shadow_op_count: u64,
    pml_harvest_count: u64,
}

/// Dom0 memory reservation used in the paper's testbed.
pub const DOM0_MEMORY: ByteSize = ByteSize::from_gib(10);

impl XenHypervisor {
    /// Boots a Xen host with `host_memory` of physical RAM; Dom0 reserves
    /// [`DOM0_MEMORY`] of it.
    ///
    /// # Panics
    ///
    /// Panics if `host_memory` is not larger than the Dom0 reservation.
    pub fn new(host_memory: ByteSize) -> Self {
        assert!(
            host_memory.as_bytes() > DOM0_MEMORY.as_bytes(),
            "host memory must exceed the Dom0 reservation"
        );
        XenHypervisor {
            core: HostCore::new(HypervisorKind::Xen, CpuidPolicy::xen_default(), 1),
            host_memory,
            dom0_memory: DOM0_MEMORY,
            shadow_op_count: 0,
            pml_harvest_count: 0,
        }
    }

    /// Physical memory available for guests.
    pub fn guest_memory_pool(&self) -> ByteSize {
        ByteSize::from_bytes(self.host_memory.as_bytes() - self.dom0_memory.as_bytes())
    }

    /// The `XEN_DOMCTL_SHADOW_OP_ENABLE_LOGDIRTY` hypercall: turn on dirty
    /// logging for a domain.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    pub fn shadow_op_enable_logdirty(&mut self, vm: VmId) -> HvResult<()> {
        self.shadow_op_count += 1;
        self.core.vm_mut(vm)?.dirty_mut().enable_logging();
        Ok(())
    }

    /// The `SHADOW_OP_OFF` hypercall: disable dirty logging.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    pub fn shadow_op_disable_logdirty(&mut self, vm: VmId) -> HvResult<()> {
        self.shadow_op_count += 1;
        self.core.vm_mut(vm)?.dirty_mut().disable_logging();
        Ok(())
    }

    /// The `SHADOW_OP_CLEAN` hypercall: read-and-clear the global dirty
    /// bitmap.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    pub fn shadow_op_clean(&mut self, vm: VmId) -> HvResult<Vec<PageId>> {
        self.shadow_op_count += 1;
        Ok(self.core.vm_mut(vm)?.dirty_mut().bitmap_mut().drain())
    }

    /// Reads a *peek* of the dirty bitmap without clearing it.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    pub fn shadow_op_peek(&mut self, vm: VmId) -> HvResult<Vec<PageId>> {
        self.shadow_op_count += 1;
        Ok(self.core.vm(vm)?.dirty().bitmap().peek())
    }

    /// HERE's addition (§7.2): harvest one vCPU's PML ring without
    /// interrupting the other vCPUs. Returns the logged pages and whether
    /// the ring overflowed (in which case the caller must resync from the
    /// bitmap).
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM/vCPU does not exist.
    pub fn harvest_vcpu_dirty_ring(
        &mut self,
        vm: VmId,
        vcpu: VcpuId,
    ) -> HvResult<(Vec<PageId>, bool)> {
        self.pml_harvest_count += 1;
        let vm = self.core.vm_mut(vm)?;
        if vcpu.index() as usize >= vm.dirty().vcpu_count() {
            return Err(HvError::NoSuchVcpu(vcpu.index()));
        }
        Ok(vm.dirty_mut().harvest_ring(vcpu.index() as usize))
    }

    /// Number of shadow-op hypercalls issued (observability for tests).
    pub fn shadow_op_count(&self) -> u64 {
        self.shadow_op_count
    }

    /// Number of PML harvests issued.
    pub fn pml_harvest_count(&self) -> u64 {
        self.pml_harvest_count
    }
}

impl Hypervisor for XenHypervisor {
    fn kind(&self) -> HypervisorKind {
        HypervisorKind::Xen
    }

    fn health(&self) -> HostHealth {
        self.core.health()
    }

    fn inject_dos(&mut self, outcome: DosOutcome) {
        self.core.inject(outcome);
    }

    fn reboot(&mut self) {
        self.core.reboot();
        self.shadow_op_count = 0;
        self.pml_harvest_count = 0;
    }

    fn default_cpuid(&self) -> CpuidPolicy {
        CpuidPolicy::xen_default()
    }

    fn create_vm(&mut self, config: VmConfig) -> HvResult<VmId> {
        self.check_memory_pool(&config)?;
        self.core.create(config, RunState::Running)
    }

    fn create_shell(&mut self, config: VmConfig) -> HvResult<VmId> {
        self.check_memory_pool(&config)?;
        self.core.create(config, RunState::Shell)
    }

    fn destroy_vm(&mut self, vm: VmId) -> HvResult<()> {
        self.core.destroy(vm)
    }

    fn vm(&self, vm: VmId) -> HvResult<&Vm> {
        self.core.vm(vm)
    }

    fn vm_mut(&mut self, vm: VmId) -> HvResult<&mut Vm> {
        self.core.vm_mut(vm)
    }

    fn get_vcpu_state(&self, vm: VmId, vcpu: VcpuId) -> HvResult<VcpuStateBlob> {
        let vm = self.core.vm(vm)?;
        let v = vm.vcpu(vcpu)?;
        Ok(VcpuStateBlob::Xen(XenVcpuState::from_arch(
            &v.regs, v.online,
        )))
    }

    fn set_vcpu_state(&mut self, vm: VmId, vcpu: VcpuId, state: VcpuStateBlob) -> HvResult<()> {
        let VcpuStateBlob::Xen(xen_state) = state else {
            return Err(HvError::Incompatible(
                "xen cannot load a kvm-format vCPU blob; translate it first".into(),
            ));
        };
        let vm = self.core.vm_mut(vm)?;
        let v = vm.vcpu_mut(vcpu)?;
        v.online = xen_state.is_online();
        v.regs = xen_state.to_arch();
        Ok(())
    }

    fn activation_latency(&self) -> SimDuration {
        XEN_ACTIVATION_LATENCY
    }
}

impl XenHypervisor {
    fn check_memory_pool(&self, config: &VmConfig) -> HvResult<()> {
        let in_use: u64 = self
            .core
            .vm_ids()
            .iter()
            .filter_map(|&id| self.core.vm(id).ok())
            .map(|vm| vm.config().memory.as_bytes())
            .sum();
        let pool = self.guest_memory_pool().as_bytes();
        if in_use + config.memory.as_bytes() > pool {
            return Err(HvError::InvalidConfig(format!(
                "guest pool exhausted: {} in use of {}, requested {}",
                ByteSize::from_bytes(in_use),
                ByteSize::from_bytes(pool),
                config.memory
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xen() -> XenHypervisor {
        XenHypervisor::new(ByteSize::from_gib(192))
    }

    fn small_cfg() -> VmConfig {
        VmConfig::new("t", ByteSize::from_mib(16), 4).unwrap()
    }

    #[test]
    fn dom0_reservation_reduces_pool() {
        let xen = xen();
        assert_eq!(xen.guest_memory_pool(), ByteSize::from_gib(182));
    }

    #[test]
    fn memory_pool_is_enforced() {
        let mut xen = XenHypervisor::new(ByteSize::from_gib(11));
        // Pool is 1 GiB; a 2 GiB guest must be refused.
        let big = VmConfig::new("big", ByteSize::from_gib(2), 1).unwrap();
        assert!(matches!(xen.create_vm(big), Err(HvError::InvalidConfig(_))));
    }

    #[test]
    fn vcpu_state_round_trips_in_native_format() {
        let mut xen = xen();
        let vm = xen.create_vm(small_cfg()).unwrap();
        let blob = xen.get_vcpu_state(vm, VcpuId::new(0)).unwrap();
        assert!(matches!(blob, VcpuStateBlob::Xen(_)));
        xen.set_vcpu_state(vm, VcpuId::new(0), blob).unwrap();
    }

    #[test]
    fn foreign_blob_is_rejected() {
        use crate::arch::ArchRegs;
        use crate::vcpu::KvmVcpuState;
        let mut xen = xen();
        let vm = xen.create_vm(small_cfg()).unwrap();
        let foreign = VcpuStateBlob::Kvm(KvmVcpuState::from_arch(&ArchRegs::default(), true));
        assert!(matches!(
            xen.set_vcpu_state(vm, VcpuId::new(0), foreign),
            Err(HvError::Incompatible(_))
        ));
    }

    #[test]
    fn logdirty_hypercalls_drive_tracking() {
        let mut xen = xen();
        let vm = xen.create_vm(small_cfg()).unwrap();
        xen.shadow_op_enable_logdirty(vm).unwrap();
        xen.vm_mut(vm)
            .unwrap()
            .guest_write(PageId::new(3), VcpuId::new(1))
            .unwrap();
        assert_eq!(xen.shadow_op_peek(vm).unwrap(), vec![PageId::new(3)]);
        let drained = xen.shadow_op_clean(vm).unwrap();
        assert_eq!(drained, vec![PageId::new(3)]);
        assert!(xen.shadow_op_clean(vm).unwrap().is_empty());
        assert!(xen.shadow_op_count() >= 4);
    }

    #[test]
    fn per_vcpu_pml_harvest_is_independent() {
        let mut xen = xen();
        let vm = xen.create_vm(small_cfg()).unwrap();
        xen.shadow_op_enable_logdirty(vm).unwrap();
        let handle = xen.vm_mut(vm).unwrap();
        handle.guest_write(PageId::new(1), VcpuId::new(0)).unwrap();
        handle.guest_write(PageId::new(2), VcpuId::new(3)).unwrap();
        let (pages0, ovf0) = xen.harvest_vcpu_dirty_ring(vm, VcpuId::new(0)).unwrap();
        assert_eq!(pages0, vec![PageId::new(1)]);
        assert!(!ovf0);
        // vCPU 3's ring is untouched by the harvest of vCPU 0.
        let (pages3, _) = xen.harvest_vcpu_dirty_ring(vm, VcpuId::new(3)).unwrap();
        assert_eq!(pages3, vec![PageId::new(2)]);
        assert!(xen.harvest_vcpu_dirty_ring(vm, VcpuId::new(9)).is_err());
    }

    #[test]
    fn crashed_xen_stops_servicing_hypercalls() {
        let mut xen = xen();
        let vm = xen.create_vm(small_cfg()).unwrap();
        xen.inject_dos(DosOutcome::Crash);
        assert!(xen.shadow_op_clean(vm).is_err());
        assert_eq!(xen.health(), HostHealth::Crashed);
    }
}
