//! Shared host machinery used by both simulated hypervisors.

use here_sim_core::time::SimDuration;

use crate::cpuid::CpuidPolicy;
use crate::dirty::DirtyBitmap;
use crate::error::{HvError, HvResult};
use crate::fault::{DosOutcome, HostHealth};
use crate::kind::HypervisorKind;
use crate::vcpu::{VcpuId, VcpuStateBlob};
use crate::vm::{RunState, Vm, VmConfig, VmId};

/// The hypervisor-independent part of a simulated host: VM table, health
/// state, and CPUID policy. [`crate::xen::XenHypervisor`] and
/// [`crate::kvm::KvmHypervisor`] wrap this with their own formats and
/// timings.
#[derive(Debug)]
pub struct HostCore {
    kind: HypervisorKind,
    health: HostHealth,
    cpuid: CpuidPolicy,
    vms: Vec<Option<Vm>>,
    first_vm_id: u64,
}

impl HostCore {
    /// Creates a healthy host of `kind` with the given default CPUID policy.
    /// `first_vm_id` reproduces each toolstack's numbering convention (Xen
    /// domids start at 1 because 0 is Dom0).
    pub fn new(kind: HypervisorKind, cpuid: CpuidPolicy, first_vm_id: u64) -> Self {
        HostCore {
            kind,
            health: HostHealth::Healthy,
            cpuid,
            vms: Vec::new(),
            first_vm_id,
        }
    }

    /// Which hypervisor this is.
    pub fn kind(&self) -> HypervisorKind {
        self.kind
    }

    /// Current host health.
    pub fn health(&self) -> HostHealth {
        self.health
    }

    /// Applies a DoS outcome to the host.
    pub fn inject(&mut self, outcome: DosOutcome) {
        self.health = HostHealth::from_outcome(outcome);
    }

    /// Reboots the host: health returns, but **all VM state is lost** —
    /// exactly why replication to a second host is needed.
    pub fn reboot(&mut self) {
        self.health = HostHealth::Healthy;
        self.vms.clear();
    }

    /// The host's default CPUID policy.
    pub fn cpuid(&self) -> &CpuidPolicy {
        &self.cpuid
    }

    /// Errors out when the host cannot service requests.
    pub fn ensure_up(&self) -> HvResult<()> {
        if self.health.can_service() {
            Ok(())
        } else {
            Err(HvError::HostDown(self.health.label()))
        }
    }

    /// Creates a VM in `run_state` and returns its id.
    pub fn create(&mut self, config: VmConfig, run_state: RunState) -> HvResult<VmId> {
        self.ensure_up()?;
        let id = VmId::new(self.first_vm_id + self.vms.len() as u64);
        let vm = Vm::build(id, config, self.kind, &self.cpuid, run_state)?;
        self.vms.push(Some(vm));
        Ok(id)
    }

    /// Destroys a VM.
    pub fn destroy(&mut self, id: VmId) -> HvResult<()> {
        self.ensure_up()?;
        let slot = self.slot_mut(id)?;
        slot.destroy();
        Ok(())
    }

    /// Immutable VM access.
    pub fn vm(&self, id: VmId) -> HvResult<&Vm> {
        self.ensure_up()?;
        self.vms
            .iter()
            .flatten()
            .find(|vm| vm.id == id)
            .ok_or(HvError::NoSuchVm(id.raw()))
    }

    /// Mutable VM access.
    pub fn vm_mut(&mut self, id: VmId) -> HvResult<&mut Vm> {
        self.ensure_up()?;
        self.slot_mut(id)
    }

    fn slot_mut(&mut self, id: VmId) -> HvResult<&mut Vm> {
        self.vms
            .iter_mut()
            .flatten()
            .find(|vm| vm.id == id)
            .ok_or(HvError::NoSuchVm(id.raw()))
    }

    /// Ids of all live (non-destroyed) VMs.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms
            .iter()
            .flatten()
            .filter(|vm| vm.run_state() != RunState::Destroyed)
            .map(|vm| vm.id)
            .collect()
    }
}

/// The control-plane interface both simulated hypervisors implement: the
/// operations a replication engine needs, and nothing more. This is the
/// crate's equivalent of the libxc/kvmtool surface HERE patches.
pub trait Hypervisor: std::fmt::Debug {
    /// Which implementation this is.
    fn kind(&self) -> HypervisorKind;

    /// Current health (heartbeat sources consult this).
    fn health(&self) -> HostHealth;

    /// Applies a DoS outcome to the host (exploit injection).
    fn inject_dos(&mut self, outcome: DosOutcome);

    /// Reboots the host, losing all VM state.
    fn reboot(&mut self);

    /// The default CPUID policy this hypervisor exposes to guests.
    fn default_cpuid(&self) -> CpuidPolicy;

    /// Boots a VM (primary side).
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the configuration is invalid.
    fn create_vm(&mut self, config: VmConfig) -> HvResult<VmId>;

    /// Creates a replica shell: allocated but never-run (secondary side).
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the configuration is invalid.
    fn create_shell(&mut self, config: VmConfig) -> HvResult<VmId>;

    /// Destroys a VM.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    fn destroy_vm(&mut self, vm: VmId) -> HvResult<()>;

    /// Immutable access to a VM.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    fn vm(&self, vm: VmId) -> HvResult<&Vm>;

    /// Mutable access to a VM.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    fn vm_mut(&mut self, vm: VmId) -> HvResult<&mut Vm>;

    /// Captures one vCPU's state **in this hypervisor's native format**.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM/vCPU does not exist.
    fn get_vcpu_state(&self, vm: VmId, vcpu: VcpuId) -> HvResult<VcpuStateBlob>;

    /// Loads one vCPU's state. The blob must be in this hypervisor's native
    /// format — a foreign blob is rejected, which is precisely why the
    /// state translator exists.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::Incompatible`] for a foreign-format blob, or the
    /// usual host/VM errors.
    fn set_vcpu_state(&mut self, vm: VmId, vcpu: VcpuId, state: VcpuStateBlob) -> HvResult<()>;

    /// The userspace cost of activating a loaded replica shell into a
    /// running VM. kvmtool's minimal device model makes this ~6 ms; Xen's
    /// full toolstack path costs ~40 ms (Fig. 7 discussion).
    fn activation_latency(&self) -> SimDuration;

    /// Atomically snapshots and clears a VM's dirty bitmap, also draining
    /// the per-vCPU PML rings so they do not grow without bound — the
    /// harvest primitive the checkpoint pipeline calls at every pause.
    ///
    /// # Errors
    ///
    /// Fails if the host is down or the VM does not exist.
    fn snapshot_dirty(&mut self, vm: VmId) -> HvResult<DirtyBitmap> {
        let vm = self.vm_mut(vm)?;
        let snapshot = vm.dirty().bitmap().clone();
        vm.dirty_mut().bitmap_mut().clear();
        for i in 0..vm.dirty().vcpu_count() {
            let _ = vm.dirty_mut().harvest_ring(i);
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_sim_core::rate::ByteSize;

    fn core() -> HostCore {
        HostCore::new(HypervisorKind::Xen, CpuidPolicy::xen_default(), 1)
    }

    fn cfg() -> VmConfig {
        VmConfig::new("t", ByteSize::from_mib(4), 1).unwrap()
    }

    #[test]
    fn vm_ids_start_at_configured_base() {
        let mut host = core();
        let a = host.create(cfg(), RunState::Running).unwrap();
        let b = host.create(cfg(), RunState::Running).unwrap();
        assert_eq!(a, VmId::new(1));
        assert_eq!(b, VmId::new(2));
        assert_eq!(host.vm_ids(), vec![a, b]);
    }

    #[test]
    fn destroyed_vms_leave_the_live_list() {
        let mut host = core();
        let a = host.create(cfg(), RunState::Running).unwrap();
        host.destroy(a).unwrap();
        assert!(host.vm_ids().is_empty());
    }

    #[test]
    fn down_host_rejects_everything() {
        let mut host = core();
        let a = host.create(cfg(), RunState::Running).unwrap();
        host.inject(DosOutcome::Crash);
        assert!(matches!(host.vm(a), Err(HvError::HostDown("crashed"))));
        assert!(host.create(cfg(), RunState::Running).is_err());
        assert!(host.destroy(a).is_err());
    }

    #[test]
    fn starved_host_still_services() {
        let mut host = core();
        let a = host.create(cfg(), RunState::Running).unwrap();
        host.inject(DosOutcome::Starvation);
        assert!(host.vm(a).is_ok());
        assert!(!host.health().heartbeats_reliable());
    }

    #[test]
    fn snapshot_dirty_clears_the_bitmap_and_rings() {
        use crate::xen::XenHypervisor;
        use crate::{PageId, VcpuId};
        let mut host = XenHypervisor::new(ByteSize::from_gib(16));
        let vm = host
            .create_vm(VmConfig::new("t", ByteSize::from_mib(8), 2).unwrap())
            .unwrap();
        host.vm_mut(vm).unwrap().dirty_mut().enable_logging();
        host.vm_mut(vm)
            .unwrap()
            .guest_write(PageId::new(3), VcpuId::new(1))
            .unwrap();
        let snap = host.snapshot_dirty(vm).unwrap();
        assert_eq!(snap.count(), 1);
        assert!(snap.pages_in_range(0, 16).contains(&PageId::new(3)));
        // A second snapshot sees a clean slate.
        let snap2 = host.snapshot_dirty(vm).unwrap();
        assert_eq!(snap2.count(), 0);
    }

    #[test]
    fn reboot_recovers_health_but_loses_vms() {
        let mut host = core();
        let a = host.create(cfg(), RunState::Running).unwrap();
        host.inject(DosOutcome::Hang);
        host.reboot();
        assert_eq!(host.health(), HostHealth::Healthy);
        assert!(matches!(host.vm(a), Err(HvError::NoSuchVm(_))));
    }
}
