//! Virtual machines: configuration, run state, and the in-memory object.

use serde::{Deserialize, Serialize};

use here_sim_core::rate::ByteSize;

use crate::cpuid::CpuidPolicy;
use crate::devices::{standard_device_set, DeviceInstance, GuestAgent};
use crate::dirty::DirtyTracker;
use crate::error::{HvError, HvResult};
use crate::kind::HypervisorKind;
use crate::memory::{GuestMemory, PageId};
use crate::vcpu::{Vcpu, VcpuId};

/// Identifier of a VM on one host (Xen would call it a domid).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VmId(u64);

impl VmId {
    /// Creates a VM id.
    pub const fn new(raw: u64) -> Self {
        VmId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// Static configuration of a VM.
///
/// # Examples
///
/// ```
/// use here_hypervisor::vm::VmConfig;
/// use here_sim_core::rate::ByteSize;
///
/// let cfg = VmConfig::new("db-vm", ByteSize::from_gib(8), 4).unwrap();
/// assert_eq!(cfg.vcpus, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Human-readable VM name.
    pub name: String,
    /// Guest memory size.
    pub memory: ByteSize,
    /// Number of vCPUs.
    pub vcpus: u32,
    /// CPUID policy override; `None` means "use the host's default policy".
    pub cpuid: Option<CpuidPolicy>,
}

impl VmConfig {
    /// Creates a VM configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::InvalidConfig`] if `vcpus` is zero or `memory`
    /// is not a positive multiple of the page size.
    pub fn new(name: impl Into<String>, memory: ByteSize, vcpus: u32) -> HvResult<Self> {
        if vcpus == 0 {
            return Err(HvError::InvalidConfig(
                "a VM needs at least one vCPU".into(),
            ));
        }
        // Validate memory eagerly by test-constructing the address space.
        GuestMemory::new(memory)?;
        Ok(VmConfig {
            name: name.into(),
            memory,
            vcpus,
            cpuid: None,
        })
    }

    /// Sets an explicit CPUID policy (the reconciled cross-hypervisor
    /// policy HERE installs before replication).
    pub fn with_cpuid(mut self, policy: CpuidPolicy) -> Self {
        self.cpuid = Some(policy);
        self
    }
}

/// Execution state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunState {
    /// Executing guest instructions.
    Running,
    /// Paused by the toolstack (checkpoint stop-and-copy window).
    Paused,
    /// A replica shell: memory and state are being loaded, the VM has never
    /// run on this host. Activating it moves it to [`RunState::Running`].
    Shell,
    /// Destroyed; only the id remains.
    Destroyed,
}

impl RunState {
    /// Lowercase label for error messages.
    pub fn label(self) -> &'static str {
        match self {
            RunState::Running => "running",
            RunState::Paused => "paused",
            RunState::Shell => "a replica shell",
            RunState::Destroyed => "destroyed",
        }
    }
}

/// A virtual machine resident on a simulated host.
#[derive(Debug, Clone)]
pub struct Vm {
    /// This VM's id on its host.
    pub id: VmId,
    config: VmConfig,
    memory: GuestMemory,
    vcpus: Vec<Vcpu>,
    devices: Vec<DeviceInstance>,
    agent: GuestAgent,
    dirty: DirtyTracker,
    run_state: RunState,
    cpuid: CpuidPolicy,
}

impl Vm {
    /// Builds a VM from `config` with `family`-native devices, in the given
    /// initial `run_state` ([`RunState::Running`] for a fresh boot,
    /// [`RunState::Shell`] for a replica target).
    pub(crate) fn build(
        id: VmId,
        config: VmConfig,
        family: HypervisorKind,
        host_cpuid: &CpuidPolicy,
        run_state: RunState,
    ) -> HvResult<Self> {
        let memory = GuestMemory::new(config.memory)?;
        let vcpus = (0..config.vcpus)
            .map(|i| Vcpu::new(VcpuId::new(i)))
            .collect();
        let devices = standard_device_set(family);
        let dirty = DirtyTracker::new(memory.num_pages(), config.vcpus as usize);
        let cpuid = config.cpuid.clone().unwrap_or_else(|| host_cpuid.clone());
        if !cpuid.is_subset_of(host_cpuid) {
            return Err(HvError::Incompatible(format!(
                "requested CPUID policy exposes features the {family} host does not offer"
            )));
        }
        Ok(Vm {
            id,
            agent: GuestAgent::new(devices.clone()),
            config,
            memory,
            vcpus,
            devices,
            dirty,
            run_state,
            cpuid,
        })
    }

    /// The VM's static configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Current run state.
    pub fn run_state(&self) -> RunState {
        self.run_state
    }

    /// The effective CPUID policy the guest sees.
    pub fn cpuid(&self) -> &CpuidPolicy {
        &self.cpuid
    }

    /// Guest memory (read access).
    pub fn memory(&self) -> &GuestMemory {
        &self.memory
    }

    /// Guest memory (mutable access, for replication state loading).
    pub fn memory_mut(&mut self) -> &mut GuestMemory {
        &mut self.memory
    }

    /// The vCPUs.
    pub fn vcpus(&self) -> &[Vcpu] {
        &self.vcpus
    }

    /// Mutable vCPU access.
    pub fn vcpus_mut(&mut self) -> &mut [Vcpu] {
        &mut self.vcpus
    }

    /// One vCPU by id.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::NoSuchVcpu`] for an out-of-range id.
    pub fn vcpu(&self, id: VcpuId) -> HvResult<&Vcpu> {
        self.vcpus
            .get(id.index() as usize)
            .ok_or(HvError::NoSuchVcpu(id.index()))
    }

    /// Mutable access to one vCPU.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::NoSuchVcpu`] for an out-of-range id.
    pub fn vcpu_mut(&mut self, id: VcpuId) -> HvResult<&mut Vcpu> {
        self.vcpus
            .get_mut(id.index() as usize)
            .ok_or(HvError::NoSuchVcpu(id.index()))
    }

    /// Attached devices.
    pub fn devices(&self) -> &[DeviceInstance] {
        &self.devices
    }

    /// Mutable device list (used by the device manager during failover).
    pub fn devices_mut(&mut self) -> &mut Vec<DeviceInstance> {
        &mut self.devices
    }

    /// The in-guest device-switch agent.
    pub fn agent(&self) -> &GuestAgent {
        &self.agent
    }

    /// Mutable agent access.
    pub fn agent_mut(&mut self) -> &mut GuestAgent {
        &mut self.agent
    }

    /// Dirty-tracking state.
    pub fn dirty(&self) -> &DirtyTracker {
        &self.dirty
    }

    /// Mutable dirty-tracking state.
    pub fn dirty_mut(&mut self) -> &mut DirtyTracker {
        &mut self.dirty
    }

    /// Records a guest write: bumps the page version and feeds both dirty
    /// tracking mechanisms. Only legal while the VM runs.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::WrongRunState`] if the VM is not running, or
    /// [`HvError::PageOutOfRange`] for a bad frame.
    pub fn guest_write(&mut self, page: PageId, vcpu: VcpuId) -> HvResult<()> {
        if self.run_state != RunState::Running {
            return Err(HvError::WrongRunState {
                op: "write guest memory",
                state: self.run_state.label(),
            });
        }
        self.memory.write_page(page, vcpu)?;
        self.dirty.record_write(page, vcpu.index() as usize);
        Ok(())
    }

    /// Pauses a running VM.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::WrongRunState`] unless the VM is running.
    pub fn pause(&mut self) -> HvResult<()> {
        match self.run_state {
            RunState::Running => {
                self.run_state = RunState::Paused;
                Ok(())
            }
            other => Err(HvError::WrongRunState {
                op: "pause",
                state: other.label(),
            }),
        }
    }

    /// Resumes a paused VM.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::WrongRunState`] unless the VM is paused.
    pub fn resume(&mut self) -> HvResult<()> {
        match self.run_state {
            RunState::Paused => {
                self.run_state = RunState::Running;
                Ok(())
            }
            other => Err(HvError::WrongRunState {
                op: "resume",
                state: other.label(),
            }),
        }
    }

    /// Activates a replica shell, making it a running VM (failover).
    ///
    /// # Errors
    ///
    /// Returns [`HvError::WrongRunState`] unless the VM is a shell.
    pub fn activate(&mut self) -> HvResult<()> {
        match self.run_state {
            RunState::Shell => {
                self.run_state = RunState::Running;
                Ok(())
            }
            other => Err(HvError::WrongRunState {
                op: "activate",
                state: other.label(),
            }),
        }
    }

    /// Marks the VM destroyed.
    pub fn destroy(&mut self) {
        self.run_state = RunState::Destroyed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> Vm {
        let cfg = VmConfig::new("t", ByteSize::from_mib(4), 2).unwrap();
        Vm::build(
            VmId::new(1),
            cfg,
            HypervisorKind::Xen,
            &CpuidPolicy::xen_default(),
            RunState::Running,
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(VmConfig::new("x", ByteSize::from_mib(4), 0).is_err());
        assert!(VmConfig::new("x", ByteSize::from_bytes(100), 1).is_err());
        assert!(VmConfig::new("x", ByteSize::from_mib(4), 1).is_ok());
    }

    #[test]
    fn guest_write_requires_running() {
        let mut vm = vm();
        vm.guest_write(PageId::new(1), VcpuId::new(0)).unwrap();
        vm.pause().unwrap();
        assert!(matches!(
            vm.guest_write(PageId::new(2), VcpuId::new(0)),
            Err(HvError::WrongRunState { .. })
        ));
    }

    #[test]
    fn guest_write_feeds_dirty_tracking_when_logging() {
        let mut vm = vm();
        vm.dirty_mut().enable_logging();
        vm.guest_write(PageId::new(7), VcpuId::new(1)).unwrap();
        assert!(vm.dirty().bitmap().is_dirty(PageId::new(7)));
        assert_eq!(vm.dirty().ring(1).unwrap().len(), 1);
        assert_eq!(vm.memory().page(PageId::new(7)).unwrap().version, 1);
    }

    #[test]
    fn run_state_machine() {
        let mut vm = vm();
        assert_eq!(vm.run_state(), RunState::Running);
        assert!(vm.resume().is_err());
        vm.pause().unwrap();
        assert!(vm.pause().is_err());
        vm.resume().unwrap();
        assert_eq!(vm.run_state(), RunState::Running);
        assert!(vm.activate().is_err());
        vm.destroy();
        assert!(vm.pause().is_err());
    }

    #[test]
    fn shell_activation() {
        let cfg = VmConfig::new("r", ByteSize::from_mib(4), 2).unwrap();
        let mut shell = Vm::build(
            VmId::new(2),
            cfg,
            HypervisorKind::Kvm,
            &CpuidPolicy::kvm_default(),
            RunState::Shell,
        )
        .unwrap();
        assert!(shell.guest_write(PageId::new(0), VcpuId::new(0)).is_err());
        shell.activate().unwrap();
        assert_eq!(shell.run_state(), RunState::Running);
    }

    #[test]
    fn incompatible_cpuid_is_rejected() {
        let cfg = VmConfig::new("x", ByteSize::from_mib(4), 1)
            .unwrap()
            .with_cpuid(CpuidPolicy::xen_default());
        // Xen's default policy exposes TSX/AVX-512 which KVM does not offer.
        let err = Vm::build(
            VmId::new(3),
            cfg,
            HypervisorKind::Kvm,
            &CpuidPolicy::kvm_default(),
            RunState::Shell,
        );
        assert!(matches!(err, Err(HvError::Incompatible(_))));
    }

    #[test]
    fn devices_match_host_family() {
        let vm = vm();
        assert!(vm
            .devices()
            .iter()
            .all(|d| d.model.family() == HypervisorKind::Xen));
        assert_eq!(vm.agent().devices().len(), 3);
    }
}
