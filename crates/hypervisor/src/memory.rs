//! Sparse, versioned guest physical memory.
//!
//! Replication cost in the paper is a function of *which 4 KiB pages are
//! dirty*, not of their payloads, so guest memory stores an 8-byte version
//! record per page instead of 4 KiB of bytes (see DESIGN.md, substitution
//! table). A page's byte content is derived deterministically from
//! `(frame, version)` by [`GuestMemory::materialize`], which lets the state
//! translator and wire codec be tested against full 4 KiB images while a
//! 20 GiB guest costs ~40 MiB of host memory.

use serde::{Deserialize, Serialize};

use here_sim_core::rate::ByteSize;

use crate::error::{HvError, HvResult};
use crate::vcpu::VcpuId;

/// Logical guest page size in bytes (x86 small page).
pub const PAGE_SIZE: u64 = 4096;

/// A guest physical frame number.
///
/// # Examples
///
/// ```
/// use here_hypervisor::memory::{PageId, PAGE_SIZE};
///
/// let p = PageId::new(3);
/// assert_eq!(p.guest_phys_addr(), 3 * PAGE_SIZE);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageId(u64);

impl PageId {
    /// Creates the id of frame number `frame`.
    pub const fn new(frame: u64) -> Self {
        PageId(frame)
    }

    /// The frame number.
    pub const fn frame(self) -> u64 {
        self.0
    }

    /// The guest-physical address of the first byte of the page.
    pub const fn guest_phys_addr(self) -> u64 {
        self.0 * PAGE_SIZE
    }
}

impl From<u64> for PageId {
    fn from(frame: u64) -> Self {
        PageId(frame)
    }
}

/// Per-page record: the content version and the last writing vCPU.
///
/// Version 0 means "never written" (an all-zeroes page, as delivered by a
/// freshly ballooned guest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageVersion {
    /// Monotonic per-page write counter; 0 = pristine zero page.
    pub version: u32,
    /// The vCPU that performed the most recent write (0 if pristine).
    pub last_writer: u16,
}

/// The guest physical address space of one VM.
///
/// # Examples
///
/// ```
/// use here_hypervisor::memory::{GuestMemory, PageId};
/// use here_hypervisor::vcpu::VcpuId;
/// use here_sim_core::rate::ByteSize;
///
/// let mut mem = GuestMemory::new(ByteSize::from_mib(4)).unwrap();
/// assert_eq!(mem.num_pages(), 1024);
/// mem.write_page(PageId::new(7), VcpuId::new(0)).unwrap();
/// assert_eq!(mem.page(PageId::new(7)).unwrap().version, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GuestMemory {
    pages: Vec<PageVersion>,
    size: ByteSize,
    touched: u64,
}

impl GuestMemory {
    /// Allocates a guest address space of `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::InvalidConfig`] if `size` is zero or not a
    /// multiple of [`PAGE_SIZE`].
    pub fn new(size: ByteSize) -> HvResult<Self> {
        let bytes = size.as_bytes();
        if bytes == 0 || !bytes.is_multiple_of(PAGE_SIZE) {
            return Err(HvError::InvalidConfig(format!(
                "guest memory size {bytes} must be a positive multiple of {PAGE_SIZE}"
            )));
        }
        let num_pages = bytes / PAGE_SIZE;
        Ok(GuestMemory {
            pages: vec![PageVersion::default(); num_pages as usize],
            size,
            touched: 0,
        })
    }

    /// Total memory size.
    pub fn size(&self) -> ByteSize {
        self.size
    }

    /// Number of guest pages.
    pub fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Number of pages written at least once.
    pub fn touched_pages(&self) -> u64 {
        self.touched
    }

    /// The version record of `page`.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::PageOutOfRange`] if `page` is beyond the address
    /// space.
    pub fn page(&self, page: PageId) -> HvResult<PageVersion> {
        self.pages
            .get(page.frame() as usize)
            .copied()
            .ok_or(HvError::PageOutOfRange {
                page: page.frame(),
                limit: self.num_pages(),
            })
    }

    /// Records a guest write to `page` by `vcpu`, bumping its version.
    ///
    /// Returns the new version record.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::PageOutOfRange`] if `page` is beyond the address
    /// space.
    pub fn write_page(&mut self, page: PageId, vcpu: VcpuId) -> HvResult<PageVersion> {
        let limit = self.num_pages();
        let rec = self
            .pages
            .get_mut(page.frame() as usize)
            .ok_or(HvError::PageOutOfRange {
                page: page.frame(),
                limit,
            })?;
        if rec.version == 0 {
            self.touched += 1;
        }
        rec.version = rec.version.wrapping_add(1).max(1);
        rec.last_writer = vcpu.index() as u16;
        Ok(*rec)
    }

    /// Installs a page version received from a replication stream.
    ///
    /// Unlike [`GuestMemory::write_page`], this does not bump the version —
    /// it makes the local page identical to the sender's.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::PageOutOfRange`] if `page` is beyond the address
    /// space.
    pub fn install_page(&mut self, page: PageId, incoming: PageVersion) -> HvResult<()> {
        let limit = self.num_pages();
        let rec = self
            .pages
            .get_mut(page.frame() as usize)
            .ok_or(HvError::PageOutOfRange {
                page: page.frame(),
                limit,
            })?;
        if rec.version == 0 && incoming.version != 0 {
            self.touched += 1;
        } else if rec.version != 0 && incoming.version == 0 {
            self.touched -= 1;
        }
        *rec = incoming;
        Ok(())
    }

    /// Iterates over all `(page, version)` pairs with a non-zero version.
    pub fn touched_iter(&self) -> impl Iterator<Item = (PageId, PageVersion)> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, rec)| rec.version != 0)
            .map(|(i, rec)| (PageId::new(i as u64), *rec))
    }

    /// Materialises the full 4 KiB byte image of `page`.
    ///
    /// The bytes are a pure function of `(frame, version)`, so a page
    /// installed on the replica with the same version materialises to the
    /// identical image — this is how byte-exactness is asserted in tests
    /// without storing payloads.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::PageOutOfRange`] if `page` is beyond the address
    /// space.
    pub fn materialize(&self, page: PageId) -> HvResult<Box<[u8; PAGE_SIZE as usize]>> {
        let rec = self.page(page)?;
        Ok(materialize_content(page, rec))
    }

    /// Like [`materialize`](GuestMemory::materialize), writing into a
    /// caller-owned buffer — encode workers reuse one stack buffer per lane
    /// instead of boxing a fresh page image per dirty page.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::PageOutOfRange`] if `page` is beyond the address
    /// space.
    pub fn materialize_into(
        &self,
        page: PageId,
        out: &mut [u8; PAGE_SIZE as usize],
    ) -> HvResult<()> {
        let rec = self.page(page)?;
        materialize_content_into(page, rec, out);
        Ok(())
    }

    /// `true` when every page of `self` matches `other` (same versions).
    pub fn content_equals(&self, other: &GuestMemory) -> bool {
        self.pages == other.pages
    }

    /// Returns the frames at which `self` and `other` differ (for test
    /// diagnostics). Capped at `max` entries.
    pub fn diff(&self, other: &GuestMemory, max: usize) -> Vec<PageId> {
        self.pages
            .iter()
            .zip(other.pages.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| PageId::new(i as u64))
            .take(max)
            .collect()
    }
}

/// Deterministically expands a page record into its 4 KiB byte image.
///
/// Version 0 is the all-zeroes page.
pub fn materialize_content(page: PageId, rec: PageVersion) -> Box<[u8; PAGE_SIZE as usize]> {
    let mut buf = Box::new([0u8; PAGE_SIZE as usize]);
    materialize_content_into(page, rec, &mut buf);
    buf
}

/// Allocation-free variant of [`materialize_content`]: expands the page
/// image into a caller-owned buffer.
pub fn materialize_content_into(
    page: PageId,
    rec: PageVersion,
    buf: &mut [u8; PAGE_SIZE as usize],
) {
    if rec.version == 0 {
        buf.fill(0);
        return;
    }
    let mut state = splitmix(
        page.frame()
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(rec.version as u64)
            .wrapping_add((rec.last_writer as u64) << 32),
    );
    for chunk in buf.chunks_exact_mut(8) {
        state = splitmix(state);
        chunk.copy_from_slice(&state.to_le_bytes());
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_mib(mib: u64) -> GuestMemory {
        GuestMemory::new(ByteSize::from_mib(mib)).unwrap()
    }

    #[test]
    fn sizes_and_page_counts() {
        let mem = mem_mib(16);
        assert_eq!(mem.num_pages(), 4096);
        assert_eq!(mem.size(), ByteSize::from_mib(16));
        assert_eq!(mem.touched_pages(), 0);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(GuestMemory::new(ByteSize::ZERO).is_err());
        assert!(GuestMemory::new(ByteSize::from_bytes(4097)).is_err());
    }

    #[test]
    fn writes_bump_versions_and_record_writer() {
        let mut mem = mem_mib(1);
        let p = PageId::new(5);
        mem.write_page(p, VcpuId::new(2)).unwrap();
        mem.write_page(p, VcpuId::new(3)).unwrap();
        let rec = mem.page(p).unwrap();
        assert_eq!(rec.version, 2);
        assert_eq!(rec.last_writer, 3);
        assert_eq!(mem.touched_pages(), 1);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut mem = mem_mib(1);
        let bad = PageId::new(mem.num_pages());
        assert!(matches!(
            mem.write_page(bad, VcpuId::new(0)),
            Err(HvError::PageOutOfRange { .. })
        ));
        assert!(mem.page(bad).is_err());
        assert!(mem.materialize(bad).is_err());
    }

    #[test]
    fn install_makes_replicas_identical() {
        let mut primary = mem_mib(1);
        let mut replica = mem_mib(1);
        for f in [1u64, 9, 200] {
            primary.write_page(PageId::new(f), VcpuId::new(0)).unwrap();
        }
        for (page, rec) in primary.touched_iter().collect::<Vec<_>>() {
            replica.install_page(page, rec).unwrap();
        }
        assert!(primary.content_equals(&replica));
        assert_eq!(replica.touched_pages(), 3);
        assert!(primary.diff(&replica, 10).is_empty());
    }

    #[test]
    fn materialization_is_deterministic_and_version_sensitive() {
        let mut mem = mem_mib(1);
        let p = PageId::new(3);
        let zero = mem.materialize(p).unwrap();
        assert!(zero.iter().all(|&b| b == 0));
        mem.write_page(p, VcpuId::new(1)).unwrap();
        let v1a = mem.materialize(p).unwrap();
        let v1b = mem.materialize(p).unwrap();
        assert_eq!(v1a, v1b);
        mem.write_page(p, VcpuId::new(1)).unwrap();
        let v2 = mem.materialize(p).unwrap();
        assert_ne!(v1a, v2);
    }

    #[test]
    fn diff_reports_divergent_frames() {
        let mut a = mem_mib(1);
        let b = mem_mib(1);
        a.write_page(PageId::new(4), VcpuId::new(0)).unwrap();
        a.write_page(PageId::new(8), VcpuId::new(0)).unwrap();
        let d = a.diff(&b, 10);
        assert_eq!(d, vec![PageId::new(4), PageId::new(8)]);
        assert_eq!(a.diff(&b, 1).len(), 1);
    }

    #[test]
    fn touched_iter_lists_only_written_pages() {
        let mut mem = mem_mib(1);
        mem.write_page(PageId::new(0), VcpuId::new(0)).unwrap();
        mem.write_page(PageId::new(255), VcpuId::new(1)).unwrap();
        let touched: Vec<u64> = mem.touched_iter().map(|(p, _)| p.frame()).collect();
        assert_eq!(touched, vec![0, 255]);
    }
}
