//! Dirty page tracking: shadow-paging bitmap and per-vCPU PML rings.
//!
//! The paper's state manager (§7.2) extends Xen with *per-vCPU* dirty
//! tracking built on Intel Page Modification Logging, so that each migrator
//! thread can harvest its own vCPU's dirty pages "without having to
//! interrupt other vCPUs". This module provides both mechanisms:
//!
//! - [`DirtyBitmap`] — the classic global log-dirty bitmap that Xen's shadow
//!   paging maintains (used by the Remus baseline and as the PML overflow
//!   fallback);
//! - [`PmlRing`] — a fixed-capacity per-vCPU ring of dirtied frames, with an
//!   overflow ("full") flag that forces a bitmap resync, mirroring PML's
//!   512-entry hardware buffer semantics.

use serde::{Deserialize, Serialize};

use crate::memory::PageId;

/// Capacity of a hardware PML buffer (512 entries of 8 bytes = one page).
pub const PML_HW_CAPACITY: usize = 512;

/// A global dirty-page bitmap, as maintained by shadow paging or harvested
/// from PML buffers.
///
/// # Examples
///
/// ```
/// use here_hypervisor::dirty::DirtyBitmap;
/// use here_hypervisor::memory::PageId;
///
/// let mut bm = DirtyBitmap::new(1024);
/// bm.mark(PageId::new(3));
/// bm.mark(PageId::new(3)); // idempotent
/// assert_eq!(bm.count(), 1);
/// assert_eq!(bm.drain(), vec![PageId::new(3)]);
/// assert_eq!(bm.count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtyBitmap {
    words: Vec<u64>,
    num_pages: u64,
    count: u64,
}

impl DirtyBitmap {
    /// Creates a clean bitmap covering `num_pages` frames.
    pub fn new(num_pages: u64) -> Self {
        let words = vec![0u64; num_pages.div_ceil(64) as usize];
        DirtyBitmap {
            words,
            num_pages,
            count: 0,
        }
    }

    /// Number of frames covered.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Marks `page` dirty. Out-of-range frames are ignored (matching the
    /// hardware, which cannot log frames outside the guest's address space).
    pub fn mark(&mut self, page: PageId) {
        let frame = page.frame();
        if frame >= self.num_pages {
            return;
        }
        let (w, b) = (frame / 64, frame % 64);
        let word = &mut self.words[w as usize];
        if *word & (1 << b) == 0 {
            *word |= 1 << b;
            self.count += 1;
        }
    }

    /// `true` if `page` is marked dirty.
    pub fn is_dirty(&self, page: PageId) -> bool {
        let frame = page.frame();
        if frame >= self.num_pages {
            return false;
        }
        self.words[(frame / 64) as usize] & (1 << (frame % 64)) != 0
    }

    /// Number of dirty frames.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no frame is dirty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns all dirty frames in ascending order and clears the bitmap —
    /// the "read and clear" hypercall the migration code uses.
    pub fn drain(&mut self) -> Vec<PageId> {
        let pages = self.peek();
        self.clear();
        pages
    }

    /// Like [`drain`](DirtyBitmap::drain), but fills a caller-owned buffer
    /// so the steady-state checkpoint loop reuses one allocation across
    /// rounds.
    pub fn drain_into(&mut self, out: &mut Vec<PageId>) {
        self.peek_into(out);
        self.clear();
    }

    /// Returns all dirty frames in ascending order without clearing.
    pub fn peek(&self) -> Vec<PageId> {
        let mut pages = Vec::with_capacity(self.count as usize);
        self.peek_into(&mut pages);
        pages
    }

    /// Like [`peek`](DirtyBitmap::peek), into a caller-owned buffer
    /// (cleared first, allocation kept).
    pub fn peek_into(&self, out: &mut Vec<PageId>) {
        out.clear();
        out.reserve(self.count as usize);
        out.extend(self.iter());
    }

    /// Allocation-free iterator over all dirty frames, ascending.
    pub fn iter(&self) -> DirtyPagesIter<'_> {
        self.iter_range(0, self.num_pages)
    }

    /// Allocation-free iterator over dirty frames in `[lo, hi)`, ascending.
    /// `hi` is clamped to the covered range.
    pub fn iter_range(&self, lo: u64, hi: u64) -> DirtyPagesIter<'_> {
        DirtyPagesIter::new(&self.words, lo, hi.min(self.num_pages))
    }

    /// Number of dirty frames in `[lo, hi)`, by word popcounts — no
    /// per-page work, used to size per-lane buffers before a scan.
    pub fn count_in_range(&self, lo: u64, hi: u64) -> u64 {
        let hi = hi.min(self.num_pages);
        if lo >= hi {
            return 0;
        }
        let (wlo, whi) = (lo / 64, hi.div_ceil(64));
        (wlo..whi)
            .map(|wi| masked_word(&self.words, wi, lo, hi).count_ones() as u64)
            .sum()
    }

    /// Dirty frames whose number satisfies `frame % stride == lane`; used by
    /// HERE's round-robin chunk assignment tests.
    pub fn peek_lane(&self, stride: u64, lane: u64, pages_per_chunk: u64) -> Vec<PageId> {
        assert!(
            stride > 0 && pages_per_chunk > 0,
            "stride and chunk size must be positive"
        );
        self.peek()
            .into_iter()
            .filter(|p| (p.frame() / pages_per_chunk) % stride == lane)
            .collect()
    }

    /// Dirty frames in the half-open range `[lo, hi)`, ascending. This is
    /// the primitive HERE's chunk workers scan with: each worker reads only
    /// its own chunks' words, so concurrent workers never contend.
    /// Hot paths should prefer [`iter_range`](DirtyBitmap::iter_range) or
    /// [`pages_in_range_into`](DirtyBitmap::pages_in_range_into), which do
    /// not allocate.
    pub fn pages_in_range(&self, lo: u64, hi: u64) -> Vec<PageId> {
        self.iter_range(lo, hi).collect()
    }

    /// Like [`pages_in_range`](DirtyBitmap::pages_in_range), appending into
    /// a caller-owned buffer (not cleared — lanes accumulate runs of
    /// consecutive chunks into one buffer).
    pub fn pages_in_range_into(&self, lo: u64, hi: u64, out: &mut Vec<PageId>) {
        out.extend(self.iter_range(lo, hi));
    }

    /// Clears every dirty bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Merges every dirty bit of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two bitmaps cover a different number of frames.
    pub fn union_with(&mut self, other: &DirtyBitmap) {
        assert_eq!(
            self.num_pages, other.num_pages,
            "bitmap union requires equal coverage"
        );
        let mut count = 0;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
            count += a.count_ones() as u64;
        }
        self.count = count;
    }
}

/// Loads word `wi` of `words`, masking off bits outside `[lo, hi)`.
#[inline]
fn masked_word(words: &[u64], wi: u64, lo: u64, hi: u64) -> u64 {
    let mut w = words[wi as usize];
    let base = wi * 64;
    if base < lo {
        w &= !0u64 << (lo - base);
    }
    if base + 64 > hi {
        let keep = hi.saturating_sub(base);
        w &= if keep >= 64 { !0 } else { (1u64 << keep) - 1 };
    }
    w
}

/// Allocation-free iterator over the dirty frames of a [`DirtyBitmap`]
/// range, created by [`DirtyBitmap::iter`] / [`DirtyBitmap::iter_range`].
///
/// Walks one 64-bit word at a time, peeling set bits with
/// `trailing_zeros`, so iterating N dirty pages over a W-word range costs
/// O(W + N) with zero heap traffic — the scan primitive behind the
/// steady-state checkpoint loop.
#[derive(Debug, Clone)]
pub struct DirtyPagesIter<'a> {
    words: &'a [u64],
    lo: u64,
    hi: u64,
    word_index: u64,
    end_word: u64,
    current: u64,
}

impl<'a> DirtyPagesIter<'a> {
    fn new(words: &'a [u64], lo: u64, hi: u64) -> Self {
        let (wlo, whi) = if lo < hi {
            (lo / 64, hi.div_ceil(64))
        } else {
            (0, 0)
        };
        let current = if wlo < whi {
            masked_word(words, wlo, lo, hi)
        } else {
            0
        };
        DirtyPagesIter {
            words,
            lo,
            hi,
            word_index: wlo,
            end_word: whi,
            current,
        }
    }
}

impl Iterator for DirtyPagesIter<'_> {
    type Item = PageId;

    fn next(&mut self) -> Option<PageId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1;
                return Some(PageId::new(self.word_index * 64 + bit));
            }
            self.word_index += 1;
            if self.word_index >= self.end_word {
                return None;
            }
            self.current = masked_word(self.words, self.word_index, self.lo, self.hi);
        }
    }
}

/// One vCPU's Page Modification Logging buffer.
///
/// The hardware appends the guest-physical address of each newly dirtied
/// page; when the buffer fills, a VM exit lets software harvest it. We model
/// an overflow flag instead of the exit: once full, subsequent writes set
/// [`PmlRing::overflowed`] and the harvester must fall back to a bitmap
/// resync for correctness.
///
/// # Examples
///
/// ```
/// use here_hypervisor::dirty::PmlRing;
/// use here_hypervisor::memory::PageId;
///
/// let mut ring = PmlRing::with_capacity(2);
/// ring.log(PageId::new(1));
/// ring.log(PageId::new(2));
/// ring.log(PageId::new(3)); // overflow
/// assert!(ring.overflowed());
/// assert_eq!(ring.harvest().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmlRing {
    entries: Vec<PageId>,
    capacity: usize,
    overflowed: bool,
    total_logged: u64,
}

impl PmlRing {
    /// Creates a ring with the hardware capacity ([`PML_HW_CAPACITY`]).
    pub fn new() -> Self {
        PmlRing::with_capacity(PML_HW_CAPACITY)
    }

    /// Creates a ring holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "PML capacity must be positive");
        PmlRing {
            entries: Vec::with_capacity(capacity.min(PML_HW_CAPACITY * 16)),
            capacity,
            overflowed: false,
            total_logged: 0,
        }
    }

    /// Logs a dirtied frame. Duplicate frames are recorded as the hardware
    /// records them (no dedup).
    pub fn log(&mut self, page: PageId) {
        self.total_logged += 1;
        if self.entries.len() >= self.capacity {
            self.overflowed = true;
            return;
        }
        self.entries.push(page);
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` once at least one log was dropped for lack of space.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Lifetime count of log attempts (including dropped ones).
    pub fn total_logged(&self) -> u64 {
        self.total_logged
    }

    /// Takes the buffered entries and resets the ring (including the
    /// overflow flag). The caller must resync from the global bitmap if
    /// [`PmlRing::overflowed`] was set before harvesting.
    pub fn harvest(&mut self) -> Vec<PageId> {
        self.overflowed = false;
        std::mem::take(&mut self.entries)
    }
}

impl Default for PmlRing {
    fn default() -> Self {
        PmlRing::new()
    }
}

/// Combined per-VM dirty tracking state: one global bitmap plus one PML ring
/// per vCPU, as built by the paper's modified Xen.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtyTracker {
    bitmap: DirtyBitmap,
    rings: Vec<PmlRing>,
    logging_enabled: bool,
}

impl DirtyTracker {
    /// Creates tracking state for `num_pages` frames and `vcpus` vCPUs.
    ///
    /// # Panics
    ///
    /// Panics if `vcpus` is zero.
    pub fn new(num_pages: u64, vcpus: usize) -> Self {
        assert!(vcpus > 0, "a VM needs at least one vCPU");
        DirtyTracker {
            bitmap: DirtyBitmap::new(num_pages),
            rings: (0..vcpus).map(|_| PmlRing::new()).collect(),
            logging_enabled: false,
        }
    }

    /// Turns dirty logging on (the `XEN_DOMCTL_SHADOW_OP_ENABLE_LOGDIRTY`
    /// moment). Clears any stale state.
    pub fn enable_logging(&mut self) {
        self.logging_enabled = true;
        self.bitmap.clear();
        for ring in &mut self.rings {
            ring.harvest();
        }
    }

    /// Turns dirty logging off.
    pub fn disable_logging(&mut self) {
        self.logging_enabled = false;
    }

    /// `true` while dirty logging is active.
    pub fn logging_enabled(&self) -> bool {
        self.logging_enabled
    }

    /// Records a write by `vcpu_index` to `page` into both mechanisms.
    /// A no-op while logging is disabled.
    pub fn record_write(&mut self, page: PageId, vcpu_index: usize) {
        if !self.logging_enabled {
            return;
        }
        self.bitmap.mark(page);
        if let Some(ring) = self.rings.get_mut(vcpu_index) {
            ring.log(page);
        }
    }

    /// The global bitmap.
    pub fn bitmap(&self) -> &DirtyBitmap {
        &self.bitmap
    }

    /// Mutable access to the global bitmap (the migration code's
    /// read-and-clear path).
    pub fn bitmap_mut(&mut self) -> &mut DirtyBitmap {
        &mut self.bitmap
    }

    /// The PML ring of `vcpu_index`, if it exists.
    pub fn ring(&self, vcpu_index: usize) -> Option<&PmlRing> {
        self.rings.get(vcpu_index)
    }

    /// Harvests the PML ring of `vcpu_index`: returns `(pages, overflowed)`.
    ///
    /// # Panics
    ///
    /// Panics if `vcpu_index` is out of range.
    pub fn harvest_ring(&mut self, vcpu_index: usize) -> (Vec<PageId>, bool) {
        let ring = &mut self.rings[vcpu_index];
        let overflowed = ring.overflowed();
        (ring.harvest(), overflowed)
    }

    /// Number of vCPU rings.
    pub fn vcpu_count(&self) -> usize {
        self.rings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_mark_and_drain() {
        let mut bm = DirtyBitmap::new(256);
        for f in [0u64, 63, 64, 255] {
            bm.mark(PageId::new(f));
        }
        assert_eq!(bm.count(), 4);
        assert!(bm.is_dirty(PageId::new(63)));
        let drained = bm.drain();
        assert_eq!(
            drained,
            vec![0, 63, 64, 255]
                .into_iter()
                .map(PageId::new)
                .collect::<Vec<_>>()
        );
        assert!(bm.is_empty());
    }

    #[test]
    fn bitmap_ignores_out_of_range() {
        let mut bm = DirtyBitmap::new(10);
        bm.mark(PageId::new(100));
        assert_eq!(bm.count(), 0);
        assert!(!bm.is_dirty(PageId::new(100)));
    }

    #[test]
    fn bitmap_union() {
        let mut a = DirtyBitmap::new(128);
        let mut b = DirtyBitmap::new(128);
        a.mark(PageId::new(1));
        b.mark(PageId::new(1));
        b.mark(PageId::new(2));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn bitmap_lane_partition_is_disjoint_and_complete() {
        let mut bm = DirtyBitmap::new(4096);
        for f in (0..4096).step_by(3) {
            bm.mark(PageId::new(f));
        }
        let stride = 4;
        let pages_per_chunk = 512 / 4; // 2 MiB chunks of 4 KiB pages = 512; use small here
        let mut seen = Vec::new();
        for lane in 0..stride {
            seen.extend(bm.peek_lane(stride, lane, pages_per_chunk));
        }
        seen.sort();
        assert_eq!(seen, bm.peek());
    }

    #[test]
    fn iterator_matches_peek_and_ranges() {
        let mut bm = DirtyBitmap::new(1000);
        for f in [0u64, 1, 62, 63, 64, 65, 127, 128, 500, 999] {
            bm.mark(PageId::new(f));
        }
        assert_eq!(bm.iter().collect::<Vec<_>>(), bm.peek());
        for (lo, hi) in [
            (0, 1000),
            (0, 0),
            (63, 65),
            (64, 128),
            (1, 999),
            (900, 2000),
        ] {
            let via_iter: Vec<_> = bm.iter_range(lo, hi).collect();
            let expected: Vec<_> = bm
                .peek()
                .into_iter()
                .filter(|p| {
                    let f = p.frame();
                    f >= lo && f < hi.min(1000)
                })
                .collect();
            assert_eq!(via_iter, expected, "range [{lo}, {hi})");
            assert_eq!(bm.count_in_range(lo, hi), via_iter.len() as u64);
        }
    }

    #[test]
    fn drain_into_reuses_allocation() {
        let mut bm = DirtyBitmap::new(256);
        let mut buf = Vec::with_capacity(64);
        let cap = buf.capacity();
        for round in 0..3 {
            bm.mark(PageId::new(round));
            bm.mark(PageId::new(round + 100));
            bm.drain_into(&mut buf);
            assert_eq!(buf, vec![PageId::new(round), PageId::new(round + 100)]);
            assert!(bm.is_empty());
            assert_eq!(buf.capacity(), cap, "round {round} reallocated");
        }
    }

    #[test]
    fn pages_in_range_into_appends_across_chunks() {
        let mut bm = DirtyBitmap::new(512);
        for f in [10u64, 200, 300, 450] {
            bm.mark(PageId::new(f));
        }
        let mut out = Vec::new();
        bm.pages_in_range_into(0, 256, &mut out);
        bm.pages_in_range_into(256, 512, &mut out);
        assert_eq!(out, bm.peek());
    }

    #[test]
    fn pml_ring_overflow_semantics() {
        let mut ring = PmlRing::with_capacity(3);
        for f in 0..5 {
            ring.log(PageId::new(f));
        }
        assert!(ring.overflowed());
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_logged(), 5);
        let pages = ring.harvest();
        assert_eq!(pages.len(), 3);
        assert!(!ring.overflowed());
        assert!(ring.is_empty());
    }

    #[test]
    fn tracker_routes_writes_to_both_mechanisms() {
        let mut t = DirtyTracker::new(1024, 2);
        t.record_write(PageId::new(10), 0); // logging disabled: dropped
        assert_eq!(t.bitmap().count(), 0);
        t.enable_logging();
        t.record_write(PageId::new(10), 0);
        t.record_write(PageId::new(20), 1);
        assert_eq!(t.bitmap().count(), 2);
        assert_eq!(t.ring(0).unwrap().len(), 1);
        assert_eq!(t.ring(1).unwrap().len(), 1);
        let (pages, overflow) = t.harvest_ring(0);
        assert_eq!(pages, vec![PageId::new(10)]);
        assert!(!overflow);
    }

    #[test]
    fn tracker_enable_clears_stale_state() {
        let mut t = DirtyTracker::new(64, 1);
        t.enable_logging();
        t.record_write(PageId::new(1), 0);
        t.enable_logging();
        assert_eq!(t.bitmap().count(), 0);
        assert!(t.ring(0).unwrap().is_empty());
    }
}
