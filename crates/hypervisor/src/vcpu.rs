//! Virtual CPUs and the two hypervisor-specific vCPU state formats.
//!
//! Xen captures vCPU state as a `vcpu_guest_context` (GPRs in kernel
//! push-order, segments in a flat array, the pending interrupt expressed as
//! an event-channel upcall); KVM captures the same truth as separate
//! `kvm_regs` / `kvm_sregs` / MSR-list structures with a different register
//! order and a 256-bit interrupt bitmap. The two formats are deliberately
//! *incompatible at the byte level* — converting between them is the job of
//! the state translator ([`here-vmstate`]), exactly as in the paper (§7.4).
//!
//! [`here-vmstate`]: ../../here_vmstate/index.html

use serde::{Deserialize, Serialize};

use crate::arch::{ArchRegs, Segment, GPR_COUNT};

/// Identifier of a vCPU within one VM.
///
/// # Examples
///
/// ```
/// use here_hypervisor::vcpu::VcpuId;
///
/// let v = VcpuId::new(2);
/// assert_eq!(v.index(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VcpuId(u32);

impl VcpuId {
    /// Creates the id of the vCPU at `index`.
    pub const fn new(index: u32) -> Self {
        VcpuId(index)
    }

    /// The zero-based vCPU index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl From<u32> for VcpuId {
    fn from(index: u32) -> Self {
        VcpuId(index)
    }
}

/// A running vCPU: its identity plus the architectural truth it executes on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vcpu {
    /// Which vCPU of the VM this is.
    pub id: VcpuId,
    /// The architectural register file.
    pub regs: ArchRegs,
    /// Whether the vCPU is online (has been started by the guest).
    pub online: bool,
}

impl Vcpu {
    /// Creates an online vCPU in the x86 reset state.
    pub fn new(id: VcpuId) -> Self {
        Vcpu {
            id,
            regs: ArchRegs::reset_state(),
            online: true,
        }
    }
}

/// Order in which Xen's `cpu_user_regs` stores the GPRs (kernel push order).
const XEN_GPR_ORDER: [usize; GPR_COUNT] = [
    15, 14, 13, 12, 5, 3, 11, 10, 9, 8, 0, 1, 2, 6, 7,
    4,
    // r15 r14 r13 r12 rbp rbx r11 r10 r9 r8 rax rcx rdx rsi rdi rsp
];

/// Order in which KVM's `kvm_regs` stores the GPRs.
const KVM_GPR_ORDER: [usize; GPR_COUNT] = [
    0, 3, 1, 2, 6, 7, 4, 5, 8, 9, 10, 11, 12, 13, 14,
    15,
    // rax rbx rcx rdx rsi rdi rsp rbp r8..r15
];

/// Xen's segment ordering inside `vcpu_guest_context`.
const XEN_SEG_COUNT: usize = 7;

/// Xen-format vCPU state: the shape `xc_domain_save` emits.
///
/// Field layout follows Xen's `vcpu_guest_context`: GPRs in kernel
/// push-order, a packed flat segment array, the TSC split into two 32-bit
/// halves, and interrupt delivery expressed as an event-channel upcall.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XenVcpuState {
    /// `VGCF_*` flag bits (bit 0: online, bit 1: in-kernel).
    pub flags: u64,
    /// GPRs in Xen's `cpu_user_regs` order (see `XEN_GPR_ORDER`).
    pub user_regs: [u64; GPR_COUNT],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: u64,
    /// Segments in Xen order: cs, ds, es, fs, gs, ss, tr.
    pub segments: [Segment; XEN_SEG_COUNT],
    /// Control registers `cr0..cr4` packed as Xen's `ctrlreg` array
    /// (index 1 unused, as in Xen).
    pub ctrlreg: [u64; 5],
    /// EFER, STAR, LSTAR, KERNEL_GS_BASE, APIC_BASE in Xen MSR order.
    pub msrs: [u64; 5],
    /// High half of the captured TSC.
    pub tsc_hi: u32,
    /// Low half of the captured TSC.
    pub tsc_lo: u32,
    /// Event-channel upcall pending flag.
    pub evtchn_upcall_pending: bool,
    /// Vector the upcall maps to (meaningful only when pending).
    pub evtchn_pending_vector: u8,
}

impl XenVcpuState {
    /// Captures architectural state into Xen's format.
    pub fn from_arch(regs: &ArchRegs, online: bool) -> Self {
        let mut user_regs = [0u64; GPR_COUNT];
        for (slot, &arch_idx) in XEN_GPR_ORDER.iter().enumerate() {
            user_regs[slot] = regs.gprs[arch_idx];
        }
        XenVcpuState {
            flags: u64::from(online),
            user_regs,
            rip: regs.rip,
            rflags: regs.rflags,
            segments: [
                regs.cs, regs.ds, regs.es, regs.fs, regs.gs, regs.ss, regs.tr,
            ],
            ctrlreg: [
                regs.system.cr0,
                0,
                regs.system.cr2,
                regs.system.cr3,
                regs.system.cr4,
            ],
            msrs: [
                regs.system.efer,
                regs.system.star,
                regs.system.lstar,
                regs.system.kernel_gs_base,
                regs.system.apic_base,
            ],
            tsc_hi: (regs.tsc >> 32) as u32,
            tsc_lo: regs.tsc as u32,
            evtchn_upcall_pending: regs.pending_interrupt.is_some(),
            evtchn_pending_vector: regs.pending_interrupt.unwrap_or(0),
        }
    }

    /// Restores architectural state from Xen's format.
    pub fn to_arch(&self) -> ArchRegs {
        let mut regs = ArchRegs::default();
        for (slot, &arch_idx) in XEN_GPR_ORDER.iter().enumerate() {
            regs.gprs[arch_idx] = self.user_regs[slot];
        }
        regs.rip = self.rip;
        regs.rflags = self.rflags;
        [
            regs.cs, regs.ds, regs.es, regs.fs, regs.gs, regs.ss, regs.tr,
        ] = self.segments;
        regs.system.cr0 = self.ctrlreg[0];
        regs.system.cr2 = self.ctrlreg[2];
        regs.system.cr3 = self.ctrlreg[3];
        regs.system.cr4 = self.ctrlreg[4];
        regs.system.efer = self.msrs[0];
        regs.system.star = self.msrs[1];
        regs.system.lstar = self.msrs[2];
        regs.system.kernel_gs_base = self.msrs[3];
        regs.system.apic_base = self.msrs[4];
        regs.tsc = (self.tsc_hi as u64) << 32 | self.tsc_lo as u64;
        regs.pending_interrupt = self
            .evtchn_upcall_pending
            .then_some(self.evtchn_pending_vector);
        regs
    }

    /// `true` if the online flag bit is set.
    pub fn is_online(&self) -> bool {
        self.flags & 1 != 0
    }
}

/// KVM-format vCPU state: what `KVM_GET_REGS` / `KVM_GET_SREGS` /
/// `KVM_GET_MSRS` return, as kvmtool would snapshot them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvmVcpuState {
    /// GPRs in `kvm_regs` order (see `KVM_GPR_ORDER`), plus rip and rflags.
    pub regs: KvmRegs,
    /// Segment and control registers (`kvm_sregs`).
    pub sregs: KvmSregs,
    /// Explicit MSR list, as `KVM_GET_MSRS` returns.
    pub msr_entries: Vec<(u32, u64)>,
    /// 256-bit pending-interrupt bitmap (`kvm_sregs.interrupt_bitmap`).
    pub interrupt_bitmap: [u64; 4],
    /// Captured TSC in cycles.
    pub tsc: u64,
    /// Whether the vCPU is online from kvmtool's point of view.
    pub online: bool,
}

/// The `kvm_regs` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvmRegs {
    /// GPRs in KVM order.
    pub gprs: [u64; GPR_COUNT],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: u64,
}

/// The `kvm_sregs` block (segments + control registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvmSregs {
    /// Code segment.
    pub cs: Segment,
    /// Data segment.
    pub ds: Segment,
    /// Extra segment.
    pub es: Segment,
    /// FS segment.
    pub fs: Segment,
    /// GS segment.
    pub gs: Segment,
    /// Stack segment.
    pub ss: Segment,
    /// Task register.
    pub tr: Segment,
    /// CR0.
    pub cr0: u64,
    /// CR2.
    pub cr2: u64,
    /// CR3.
    pub cr3: u64,
    /// CR4.
    pub cr4: u64,
    /// EFER.
    pub efer: u64,
    /// APIC base MSR.
    pub apic_base: u64,
}

/// MSR indices KVM serialises explicitly.
pub mod msr_index {
    /// IA32_STAR.
    pub const STAR: u32 = 0xc000_0081;
    /// IA32_LSTAR.
    pub const LSTAR: u32 = 0xc000_0082;
    /// KERNEL_GS_BASE.
    pub const KERNEL_GS_BASE: u32 = 0xc000_0102;
}

impl KvmVcpuState {
    /// Captures architectural state into KVM's format.
    pub fn from_arch(regs: &ArchRegs, online: bool) -> Self {
        let mut gprs = [0u64; GPR_COUNT];
        for (slot, &arch_idx) in KVM_GPR_ORDER.iter().enumerate() {
            gprs[slot] = regs.gprs[arch_idx];
        }
        let mut interrupt_bitmap = [0u64; 4];
        if let Some(vec) = regs.pending_interrupt {
            interrupt_bitmap[(vec / 64) as usize] |= 1 << (vec % 64);
        }
        KvmVcpuState {
            regs: KvmRegs {
                gprs,
                rip: regs.rip,
                rflags: regs.rflags,
            },
            sregs: KvmSregs {
                cs: regs.cs,
                ds: regs.ds,
                es: regs.es,
                fs: regs.fs,
                gs: regs.gs,
                ss: regs.ss,
                tr: regs.tr,
                cr0: regs.system.cr0,
                cr2: regs.system.cr2,
                cr3: regs.system.cr3,
                cr4: regs.system.cr4,
                efer: regs.system.efer,
                apic_base: regs.system.apic_base,
            },
            msr_entries: vec![
                (msr_index::STAR, regs.system.star),
                (msr_index::LSTAR, regs.system.lstar),
                (msr_index::KERNEL_GS_BASE, regs.system.kernel_gs_base),
            ],
            interrupt_bitmap,
            tsc: regs.tsc,
            online,
        }
    }

    /// Restores architectural state from KVM's format.
    pub fn to_arch(&self) -> ArchRegs {
        let mut regs = ArchRegs::default();
        for (slot, &arch_idx) in KVM_GPR_ORDER.iter().enumerate() {
            regs.gprs[arch_idx] = self.regs.gprs[slot];
        }
        regs.rip = self.regs.rip;
        regs.rflags = self.regs.rflags;
        regs.cs = self.sregs.cs;
        regs.ds = self.sregs.ds;
        regs.es = self.sregs.es;
        regs.fs = self.sregs.fs;
        regs.gs = self.sregs.gs;
        regs.ss = self.sregs.ss;
        regs.tr = self.sregs.tr;
        regs.system.cr0 = self.sregs.cr0;
        regs.system.cr2 = self.sregs.cr2;
        regs.system.cr3 = self.sregs.cr3;
        regs.system.cr4 = self.sregs.cr4;
        regs.system.efer = self.sregs.efer;
        regs.system.apic_base = self.sregs.apic_base;
        for &(idx, val) in &self.msr_entries {
            match idx {
                msr_index::STAR => regs.system.star = val,
                msr_index::LSTAR => regs.system.lstar = val,
                msr_index::KERNEL_GS_BASE => regs.system.kernel_gs_base = val,
                _ => {}
            }
        }
        regs.tsc = self.tsc;
        regs.pending_interrupt =
            self.interrupt_bitmap
                .iter()
                .enumerate()
                .find_map(|(word, &bits)| {
                    (bits != 0).then(|| (word as u8) * 64 + bits.trailing_zeros() as u8)
                });
        regs
    }
}

/// A hypervisor-specific vCPU state blob, as moved over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VcpuStateBlob {
    /// Xen `vcpu_guest_context` format.
    Xen(XenVcpuState),
    /// KVM `kvm_regs`/`kvm_sregs`/MSR-list format.
    Kvm(KvmVcpuState),
}

impl VcpuStateBlob {
    /// Decodes the blob back to architectural truth, regardless of format.
    pub fn to_arch(&self) -> ArchRegs {
        match self {
            VcpuStateBlob::Xen(x) => x.to_arch(),
            VcpuStateBlob::Kvm(k) => k.to_arch(),
        }
    }

    /// Whether the contained vCPU was online.
    pub fn is_online(&self) -> bool {
        match self {
            VcpuStateBlob::Xen(x) => x.is_online(),
            VcpuStateBlob::Kvm(k) => k.online,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Gpr;

    fn busy_regs() -> ArchRegs {
        let mut regs = ArchRegs::reset_state();
        for i in 0..GPR_COUNT {
            regs.gprs[i] = 0x1000 + i as u64 * 7;
        }
        regs.rip = 0xffff_ffff_8100_0000;
        regs.rflags = 0x246;
        regs.system.cr3 = 0x3fff_d000;
        regs.system.efer = 0xd01;
        regs.system.lstar = 0xffff_ffff_8160_0000;
        regs.tsc = 0x1234_5678_9abc_def0;
        regs.pending_interrupt = Some(0xec);
        regs
    }

    #[test]
    fn xen_round_trip_preserves_arch_state() {
        let regs = busy_regs();
        let xen = XenVcpuState::from_arch(&regs, true);
        assert_eq!(xen.to_arch(), regs);
        assert!(xen.is_online());
    }

    #[test]
    fn kvm_round_trip_preserves_arch_state() {
        let regs = busy_regs();
        let kvm = KvmVcpuState::from_arch(&regs, true);
        assert_eq!(kvm.to_arch(), regs);
        assert!(kvm.online);
    }

    #[test]
    fn formats_permute_gprs_differently() {
        let mut regs = ArchRegs::default();
        regs.set_gpr(Gpr::Rax, 0xAA);
        regs.set_gpr(Gpr::Rbx, 0xBB);
        let xen = XenVcpuState::from_arch(&regs, true);
        let kvm = KvmVcpuState::from_arch(&regs, true);
        // Xen puts rax at slot 10; KVM puts it at slot 0.
        assert_eq!(xen.user_regs[10], 0xAA);
        assert_eq!(kvm.regs.gprs[0], 0xAA);
        // Xen puts rbx at slot 5; KVM at slot 1.
        assert_eq!(xen.user_regs[5], 0xBB);
        assert_eq!(kvm.regs.gprs[1], 0xBB);
    }

    #[test]
    fn tsc_split_reassembles() {
        let regs = ArchRegs {
            tsc: u64::MAX - 5,
            ..ArchRegs::default()
        };
        let xen = XenVcpuState::from_arch(&regs, true);
        assert_eq!(xen.to_arch().tsc, u64::MAX - 5);
    }

    #[test]
    fn pending_interrupt_encodings_differ_but_agree() {
        let regs = ArchRegs {
            pending_interrupt: Some(0x31),
            ..ArchRegs::default()
        };
        let xen = XenVcpuState::from_arch(&regs, true);
        let kvm = KvmVcpuState::from_arch(&regs, true);
        assert!(xen.evtchn_upcall_pending);
        assert_eq!(xen.evtchn_pending_vector, 0x31);
        assert_eq!(kvm.interrupt_bitmap[0], 1 << 0x31);
        assert_eq!(xen.to_arch().pending_interrupt, Some(0x31));
        assert_eq!(kvm.to_arch().pending_interrupt, Some(0x31));
    }

    #[test]
    fn blob_decodes_either_format() {
        let regs = busy_regs();
        let xen_blob = VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, true));
        let kvm_blob = VcpuStateBlob::Kvm(KvmVcpuState::from_arch(&regs, true));
        assert_eq!(xen_blob.to_arch(), regs);
        assert_eq!(kvm_blob.to_arch(), regs);
        assert!(xen_blob.is_online() && kvm_blob.is_online());
    }

    #[test]
    fn offline_vcpu_flag_round_trips() {
        let regs = ArchRegs::default();
        let xen = XenVcpuState::from_arch(&regs, false);
        assert!(!xen.is_online());
        let kvm = KvmVcpuState::from_arch(&regs, false);
        assert!(!kvm.online);
    }
}
