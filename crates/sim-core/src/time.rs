//! Virtual time for the deterministic simulation.
//!
//! All components of the reproduction measure durations in *virtual* time:
//! a [`SimTime`] is a number of nanoseconds since the start of the
//! simulation, and a [`SimDuration`] is a span between two such instants.
//! Using virtual time (instead of `std::time::Instant`) makes every
//! experiment deterministic and host-independent, which is what allows the
//! paper's duration-based metrics (checkpoint pause `t`, period `T`,
//! degradation `D_T = t / (t + T)`) to be asserted exactly in tests.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in virtual time, counted in nanoseconds from simulation start.
///
/// # Examples
///
/// ```
/// use here_sim_core::time::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(8);
/// assert_eq!(t1 - t0, SimDuration::from_micros(8_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
///
/// # Examples
///
/// ```
/// use here_sim_core::time::SimDuration;
///
/// let pause = SimDuration::from_millis(40);
/// let period = SimDuration::from_secs(8);
/// let degradation = pause.as_secs_f64() / (pause + period).as_secs_f64();
/// assert!(degradation < 0.005);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (useful for plotting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is later than `self`
    /// (saturating, like [`std::time::Instant::saturating_duration_since`]).
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked advance; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" sentinel
    /// (e.g. `T_max = ∞` in the paper's Table 6 configurations).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a floating-point number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition (clamps at [`SimDuration::MAX`]).
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Divides the span by a positive float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is not a positive finite number.
    pub fn div_f64(self, divisor: f64) -> SimDuration {
        assert!(
            divisor.is_finite() && divisor > 0.0,
            "duration divisor must be finite and positive, got {divisor}"
        );
        SimDuration((self.0 as f64 / divisor).round() as u64)
    }

    /// Rounds to the nearest multiple of `step`, as used by Algorithm 1's
    /// `round((T + T_max) / 2, σ)` midpoint adjustment.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn round_to(self, step: SimDuration) -> SimDuration {
        assert!(!step.is_zero(), "rounding step must be non-zero");
        let half = step.0 / 2;
        let rounded = self.0.saturating_add(half) / step.0 * step.0;
        SimDuration(rounded)
    }

    /// Clamps the span into `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(250));
        assert_eq!(t - SimDuration::from_millis(250), SimTime::from_secs(3));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.0000000015),
            SimDuration::from_nanos(2)
        );
        assert_eq!(
            SimDuration::from_secs_f64(2.5),
            SimDuration::from_millis(2500)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn round_to_step_behaves_like_algorithm_1_rounding() {
        let sigma = SimDuration::from_millis(500);
        assert_eq!(
            SimDuration::from_millis(1240).round_to(sigma),
            SimDuration::from_millis(1000)
        );
        assert_eq!(
            SimDuration::from_millis(1250).round_to(sigma),
            SimDuration::from_millis(1500)
        );
        assert_eq!(SimDuration::ZERO.round_to(sigma), SimDuration::ZERO);
    }

    #[test]
    fn mul_div_f64() {
        let d = SimDuration::from_secs(4);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_secs(1));
        assert_eq!(d.div_f64(4.0), SimDuration::from_secs(1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
