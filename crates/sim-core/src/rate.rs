//! Bandwidth and byte-count units.
//!
//! Converting between link bandwidth and per-transfer durations is done in
//! one place so every component (migration engine, checkpoint transfer,
//! client traffic) prices bytes identically.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A quantity of bytes.
///
/// # Examples
///
/// ```
/// use here_sim_core::rate::ByteSize;
///
/// assert_eq!(ByteSize::from_gib(1).as_bytes(), 1024 * 1024 * 1024);
/// assert_eq!(ByteSize::from_mib(2) + ByteSize::from_mib(3), ByteSize::from_mib(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size of `bytes` bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size of `kib` kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size of `mib` mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a size of `gib` gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// The size in bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// The size in mebibytes, as a float.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// The size in gibibytes, as a float.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }
}

impl std::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 * 1024 {
            write!(f, "{:.2} GiB", self.as_gib_f64())
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{:.2} MiB", self.as_mib_f64())
        } else if self.0 >= 1024 {
            write!(f, "{:.2} KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A transmission rate in bits per second.
///
/// # Examples
///
/// ```
/// use here_sim_core::rate::{Bandwidth, ByteSize};
/// use here_sim_core::time::SimDuration;
///
/// let link = Bandwidth::from_gbps(10);
/// let t = link.transfer_time(ByteSize::from_mib(1));
/// // 1 MiB over 10 Gb/s ≈ 0.84 ms
/// assert!(t > SimDuration::from_micros(800) && t < SimDuration::from_micros(900));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a rate of `bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero (a zero-rate link can never deliver).
    pub fn from_bps(bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        Bandwidth(bps)
    }

    /// Creates a rate of `mbps` megabits per second.
    pub fn from_mbps(mbps: u64) -> Self {
        Bandwidth::from_bps(mbps * 1_000_000)
    }

    /// Creates a rate of `gbps` gigabits per second.
    pub fn from_gbps(gbps: u64) -> Self {
        Bandwidth::from_bps(gbps * 1_000_000_000)
    }

    /// The rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Time to serialise `size` onto the wire at this rate.
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        let bits = size.as_bytes() as u128 * 8;
        let nanos = bits * 1_000_000_000 / self.0 as u128;
        SimDuration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }

    /// Bytes deliverable in `window` at this rate.
    pub fn bytes_in(self, window: SimDuration) -> ByteSize {
        let bits = self.0 as u128 * window.as_nanos() as u128 / 1_000_000_000;
        ByteSize::from_bytes((bits / 8).min(u64::MAX as u128) as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.1} Gb/s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.1} Mb/s", self.0 as f64 / 1e6)
        } else {
            write!(f, "{} b/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_hand_calculation() {
        // 100 Gb/s: 4 KiB page = 32768 bits -> 327.68 ns
        let omni_path = Bandwidth::from_gbps(100);
        let t = omni_path.transfer_time(ByteSize::from_kib(4));
        assert_eq!(t.as_nanos(), 327);
    }

    #[test]
    fn transfer_and_window_are_inverse() {
        let bw = Bandwidth::from_gbps(10);
        let size = ByteSize::from_mib(64);
        let t = bw.transfer_time(size);
        let back = bw.bytes_in(t);
        let diff = size.as_bytes().abs_diff(back.as_bytes());
        assert!(diff <= 16, "round trip lost {diff} bytes");
    }

    #[test]
    fn bytesize_display() {
        assert_eq!(ByteSize::from_bytes(512).to_string(), "512 B");
        assert_eq!(ByteSize::from_gib(20).to_string(), "20.00 GiB");
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::from_gbps(100).to_string(), "100.0 Gb/s");
        assert_eq!(Bandwidth::from_mbps(10).to_string(), "10.0 Mb/s");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Bandwidth::from_bps(0);
    }
}
