//! # here-sim-core — deterministic virtual-time simulation kernel
//!
//! The foundation of the HERE reproduction. Everything above this crate —
//! the simulated hypervisors, the network, the workloads, and the
//! replication engine itself — runs on *virtual time* supplied here, which
//! makes every experiment deterministic, host-independent, and assertable in
//! tests.
//!
//! The crate provides:
//!
//! - [`time`]: [`SimTime`](time::SimTime) instants and
//!   [`SimDuration`](time::SimDuration) spans with nanosecond resolution;
//! - [`queue`]: a deterministic [`EventQueue`](queue::EventQueue) with FIFO
//!   tie-breaking for same-instant events;
//! - [`rng`]: seeded, forkable random streams ([`SimRng`](rng::SimRng));
//! - [`metrics`]: counters, time series and histograms the experiment
//!   harness consumes;
//! - [`stats`]: summary statistics and the least-squares fit used to verify
//!   the paper's `f(N) = αN` linearity claim (Fig. 5);
//! - [`rate`]: byte and bandwidth units with transfer-time conversion.
//!
//! ## Example
//!
//! ```
//! use here_sim_core::queue::EventQueue;
//! use here_sim_core::time::{SimDuration, SimTime};
//!
//! // A miniature event loop: schedule two checkpoints and drain them.
//! let mut clock = SimTime::ZERO;
//! let mut queue = EventQueue::new();
//! queue.push(clock + SimDuration::from_secs(3), "checkpoint 1");
//! queue.push(clock + SimDuration::from_secs(6), "checkpoint 2");
//! while let Some((at, ev)) = queue.pop() {
//!     clock = at;
//!     let _ = ev;
//! }
//! assert_eq!(clock, SimTime::from_secs(6));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod queue;
pub mod rate;
pub mod rng;
pub mod stats;
pub mod time;

pub use metrics::{Counter, Histogram, TimeSeries};
pub use queue::EventQueue;
pub use rate::{Bandwidth, ByteSize};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
