//! Measurement primitives shared by all experiments.
//!
//! The benches regenerate the paper's tables and figures from these
//! structures: a [`TimeSeries`] backs the Fig. 9/10 period-vs-time plots, a
//! [`Histogram`] backs latency distributions (Fig. 17), and [`Counter`]s back
//! resource accounting (§8.7).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing count (operations completed, pages sent, ...).
///
/// # Examples
///
/// ```
/// use here_sim_core::metrics::Counter;
///
/// let mut ops = Counter::new();
/// ops.add(3);
/// ops.incr();
/// assert_eq!(ops.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A timestamped sequence of samples, e.g. the checkpoint period `T` over the
/// lifetime of a workload (Fig. 9).
///
/// # Examples
///
/// ```
/// use here_sim_core::metrics::TimeSeries;
/// use here_sim_core::time::SimTime;
///
/// let mut period = TimeSeries::new("period_secs");
/// period.record(SimTime::from_secs(1), 25.0);
/// period.record(SimTime::from_secs(2), 24.5);
/// assert_eq!(period.len(), 2);
/// assert_eq!(period.last().unwrap().1, 24.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    pub fn record(&mut self, at: SimTime, value: f64) {
        self.samples.push((at, value));
    }

    /// All samples in record order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.samples.last().copied()
    }

    /// Mean of the sample values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
    }

    /// Mean of values sampled in the half-open window `[from, to)`.
    pub fn mean_in_window(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Iterator over `(seconds, value)` pairs — the shape plotting wants.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples.iter().map(|&(t, v)| (t.as_secs_f64(), v))
    }
}

/// A collection of scalar observations with summary statistics; backs
/// latency and pause-time distributions.
///
/// # Examples
///
/// ```
/// use here_sim_core::metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.observe(v);
/// }
/// assert_eq!(h.mean(), Some(2.5));
/// assert_eq!(h.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    values: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { values: Vec::new() }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Records a duration observation in seconds.
    pub fn observe_duration(&mut self, d: SimDuration) {
        self.values.push(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// `true` if nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on the sorted data.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("histogram values must not be NaN"));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(sorted[idx])
    }

    /// All raw observations in record order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.add(10);
        c.incr();
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn time_series_window_mean() {
        let mut ts = TimeSeries::new("x");
        for s in 0..10 {
            ts.record(SimTime::from_secs(s), s as f64);
        }
        assert_eq!(
            ts.mean_in_window(SimTime::from_secs(2), SimTime::from_secs(5)),
            Some(3.0)
        );
        assert_eq!(
            ts.mean_in_window(SimTime::from_secs(50), SimTime::from_secs(60)),
            None
        );
    }

    #[test]
    fn time_series_mean_and_last() {
        let mut ts = TimeSeries::new("y");
        assert!(ts.mean().is_none());
        ts.record(SimTime::from_secs(0), 2.0);
        ts.record(SimTime::from_secs(1), 4.0);
        assert_eq!(ts.mean(), Some(3.0));
        assert_eq!(ts.last(), Some((SimTime::from_secs(1), 4.0)));
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.observe(v as f64);
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        let median = h.quantile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&median));
    }

    #[test]
    fn histogram_duration_observations() {
        let mut h = Histogram::new();
        h.observe_duration(SimDuration::from_millis(500));
        assert_eq!(h.mean(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_out_of_range_panics() {
        Histogram::new().quantile(1.5);
    }
}
