//! Deterministic event queue for discrete-event simulation.
//!
//! The queue orders events by virtual timestamp; events scheduled for the
//! same instant are delivered in insertion (FIFO) order, which keeps every
//! simulation run exactly reproducible regardless of the host.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of events of type `E`.
///
/// # Examples
///
/// ```
/// use here_sim_core::queue::EventQueue;
/// use here_sim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "checkpoint");
/// q.push(SimTime::from_secs(1), "heartbeat");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "heartbeat")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "checkpoint")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` for delivery at instant `at`.
    ///
    /// Scheduling in the past is permitted (the event is simply delivered
    /// next); callers that care should check against their current clock.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, ev) in iter {
            self.push(at, ev);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 5);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_preserved_after_interleaved_pops() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, "a");
        q.push(t, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(t, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<&str> = vec![
            (SimTime::from_secs(2), "late"),
            (SimTime::from_secs(1), "early"),
        ]
        .into_iter()
        .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
    }
}
