//! Small statistics toolbox: summary statistics and least-squares fitting.
//!
//! The linear fit is used to validate the paper's Fig. 5 claim — that page
//! send time is linear in the number of dirty pages, `f(N) = αN` — and to
//! estimate `α` online in the dynamic checkpoint period manager.

/// Result of an ordinary least-squares line fit `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`; 1 means a perfect fit.
    pub r_squared: f64,
}

/// Fits a least-squares line through `(x, y)` points.
///
/// Returns `None` for fewer than two points or when all `x` are identical
/// (the slope would be undefined).
///
/// # Examples
///
/// ```
/// use here_sim_core::stats::linear_fit;
///
/// let pts: Vec<(f64, f64)> = (1..=10).map(|n| (n as f64, 3.0 * n as f64 + 1.0)).collect();
/// let fit = linear_fit(&pts).unwrap();
/// assert!((fit.slope - 3.0).abs() < 1e-9);
/// assert!((fit.intercept - 1.0).abs() < 1e-9);
/// assert!(fit.r_squared > 0.999);
/// ```
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Arithmetic mean; `None` when `values` is empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Sample standard deviation (n − 1 denominator); `None` for fewer than two
/// values.
pub fn stddev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() as f64 - 1.0);
    Some(var.sqrt())
}

/// Relative change from `baseline` to `observed` as a percentage.
///
/// Positive means `observed` is *smaller* (an improvement for durations), so
/// `percent_improvement(10.0, 5.0) == 50.0`, matching the paper's phrasing
/// "HERE improved migration time by nearly 49%".
///
/// # Panics
///
/// Panics if `baseline` is zero.
pub fn percent_improvement(baseline: f64, observed: f64) -> f64 {
    assert!(baseline != 0.0, "baseline must be non-zero");
    (baseline - observed) / baseline * 100.0
}

/// Performance degradation as a percentage relative to `baseline` throughput:
/// `degradation_percent(100.0, 68.0) == 32.0`, matching the figures'
/// above-bar annotations.
///
/// # Panics
///
/// Panics if `baseline` is zero.
pub fn degradation_percent(baseline: f64, observed: f64) -> f64 {
    assert!(baseline != 0.0, "baseline must be non-zero");
    (baseline - observed) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..20).map(|n| (n as f64, 2.5 * n as f64 - 4.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-9);
        assert!((fit.intercept + 4.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn fit_r_squared_drops_with_noise() {
        // A V shape is badly explained by a line.
        let pts = [(0.0, 1.0), (1.0, 0.0), (2.0, 1.0)];
        let fit = linear_fit(&pts).unwrap();
        assert!(fit.r_squared < 0.5);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(stddev(&[1.0]), None);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138).abs() < 0.01);
    }

    #[test]
    fn improvement_and_degradation() {
        assert_eq!(percent_improvement(10.0, 5.0), 50.0);
        assert_eq!(degradation_percent(100.0, 68.0), 32.0);
        assert!(percent_improvement(10.0, 12.0) < 0.0);
    }
}
