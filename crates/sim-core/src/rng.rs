//! Seeded, forkable random number generation.
//!
//! Every stochastic component of the simulation (workload key selection,
//! page-write placement, exploit timing, ...) draws from a [`SimRng`] derived
//! from a single experiment seed, so that whole experiments are reproducible
//! bit-for-bit. Components receive *forked* streams keyed by a label, which
//! keeps their randomness independent of each other's consumption order.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG stream for one simulation component.
///
/// # Examples
///
/// ```
/// use here_sim_core::rng::SimRng;
///
/// let mut root = SimRng::seed_from(42);
/// let mut ycsb = root.fork("ycsb");
/// let mut net = root.fork("net");
/// // Streams with distinct labels are independent and reproducible.
/// let a: u64 = ycsb.next_u64();
/// let b: u64 = SimRng::seed_from(42).fork("ycsb").next_u64();
/// assert_eq!(a, b);
/// let c: u64 = SimRng::seed_from(42).fork("net").next_u64();
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates the root stream for experiment seed `seed`.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream named `label`.
    ///
    /// Forking depends only on the parent's *seed* and the label — not on how
    /// much randomness the parent has consumed — so adding a new consumer
    /// never perturbs existing streams.
    pub fn fork(&self, label: &str) -> SimRng {
        let child_seed = splitmix(self.seed ^ fnv1a(label.as_bytes()));
        SimRng {
            inner: StdRng::seed_from_u64(child_seed),
            seed: child_seed,
        }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range lo {lo} must not exceed hi {hi}");
        self.inner.gen_range(lo..=hi)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a hash of `bytes`; used to turn fork labels into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finaliser; decorrelates nearby seeds.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let mut parent1 = SimRng::seed_from(7);
        let _ = parent1.next_u64(); // consume some randomness
        let parent2 = SimRng::seed_from(7);
        assert_eq!(
            parent1.fork("child").next_u64(),
            parent2.fork("child").next_u64()
        );
    }

    #[test]
    fn distinct_labels_give_distinct_streams() {
        let root = SimRng::seed_from(7);
        assert_ne!(root.fork("a").next_u64(), root.fork("b").next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        SimRng::seed_from(1).below(0);
    }
}
