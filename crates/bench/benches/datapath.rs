//! Criterion benches for the executed checkpoint data plane: the
//! allocation-free dirty-bitmap scan, the chunk-ordered parallel collect,
//! the per-lane materialized encode, and the full
//! harvest→translate→encode→decode→restore sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use here_bench::experiments::datapath::run_datapath;
use here_bench::Scale;
use here_core::dataplane::{encode_pages_parallel, BufferPool, LanePool, PayloadMode};
use here_core::transfer::{collect_chunked_into, CollectScratch};
use here_hypervisor::dirty::DirtyBitmap;
use here_hypervisor::memory::GuestMemory;
use here_hypervisor::{PageId, VcpuId};
use here_sim_core::rate::ByteSize;
use here_vmstate::MemoryDelta;

const PAGES: u64 = 8_192;

fn fixture() -> (GuestMemory, DirtyBitmap) {
    let mut memory = GuestMemory::new(ByteSize::from_mib(128)).unwrap();
    let mut dirty = DirtyBitmap::new(memory.num_pages());
    for i in 0..PAGES {
        let frame = PageId::new(i * 3);
        memory
            .write_page(frame, VcpuId::new((i % 4) as u32))
            .unwrap();
        dirty.mark(frame);
    }
    (memory, dirty)
}

fn bench(c: &mut Criterion) {
    let (memory, dirty) = fixture();
    let mut g = c.benchmark_group("datapath");
    g.sample_size(10);

    // Satellite: the iterator-based bitmap scan (no Vec<PageId> per call).
    g.bench_function("bitmap_scan_iter", |b| {
        b.iter(|| dirty.iter().map(|p| p.frame()).sum::<u64>())
    });
    g.bench_function("bitmap_scan_alloc", |b| {
        b.iter(|| dirty.peek().iter().map(|p| p.frame()).sum::<u64>())
    });

    for workers in [1u32, 4] {
        let mut scratch = CollectScratch::new();
        let mut delta = MemoryDelta::new();
        g.bench_function(format!("collect_w{workers}"), |b| {
            b.iter(|| {
                delta.clear();
                collect_chunked_into(&memory, &dirty, workers, &mut scratch, &mut delta);
                delta.len()
            })
        });
    }

    for lanes in [1u32, 4] {
        let mut scratch = CollectScratch::new();
        let mut delta = MemoryDelta::new();
        collect_chunked_into(&memory, &dirty, 1, &mut scratch, &mut delta);
        let mut pool = BufferPool::new();
        let lane_pool = LanePool::new();
        g.bench_function(format!("encode_materialized_l{lanes}"), |b| {
            b.iter(|| {
                let segs = encode_pages_parallel(
                    &delta,
                    lanes,
                    PayloadMode::Materialized,
                    &mut pool,
                    &lane_pool,
                );
                let total: usize = segs.iter().map(|s| s.len()).sum();
                for seg in segs {
                    pool.recycle(seg);
                }
                total
            })
        });
    }

    g.bench_function("full_sweep_quick", |b| {
        b.iter(|| run_datapath(Scale::Quick))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
