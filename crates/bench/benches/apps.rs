//! Criterion benches for the application figures: YCSB (Figs. 11–13) and
//! SPEC (Figs. 14–16).

use criterion::{criterion_group, criterion_main, Criterion};
use here_bench::experiments::apps::{
    run_spec_figure, run_ycsb_figure, FIG11_CONFIGS, FIG12_CONFIGS, FIG13_CONFIGS,
};
use here_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(40));
    g.bench_function("fig11_ycsb_fixed", |b| {
        b.iter(|| run_ycsb_figure(Scale::Quick, &FIG11_CONFIGS))
    });
    g.bench_function("fig12_ycsb_degradation", |b| {
        b.iter(|| run_ycsb_figure(Scale::Quick, &FIG12_CONFIGS))
    });
    g.bench_function("fig13_ycsb_both", |b| {
        b.iter(|| run_ycsb_figure(Scale::Quick, &FIG13_CONFIGS))
    });
    g.bench_function("fig14_spec_fixed", |b| {
        b.iter(|| run_spec_figure(Scale::Quick, &FIG11_CONFIGS))
    });
    g.bench_function("fig15_spec_degradation", |b| {
        b.iter(|| run_spec_figure(Scale::Quick, &FIG12_CONFIGS))
    });
    g.bench_function("fig16_spec_both", |b| {
        b.iter(|| run_spec_figure(Scale::Quick, &FIG13_CONFIGS))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
