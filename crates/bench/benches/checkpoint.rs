//! Criterion benches for Fig. 5 (linearity) and Fig. 8 (checkpoint
//! transfer).

use criterion::{criterion_group, criterion_main, Criterion};
use here_bench::experiments::checkpoint::{run_fig5, run_fig8};
use here_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint");
    g.sample_size(10);
    g.bench_function("fig5_linear", |b| b.iter(|| run_fig5(Scale::Quick)));
    g.bench_function("fig8_idle", |b| b.iter(|| run_fig8(Scale::Quick, false)));
    g.bench_function("fig8_loaded", |b| b.iter(|| run_fig8(Scale::Quick, true)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
