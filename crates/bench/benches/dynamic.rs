//! Criterion benches for the dynamic period manager: Fig. 9 and Fig. 10.

use criterion::{criterion_group, criterion_main, Criterion};
use here_bench::experiments::dynamic::{run_fig10, run_fig9};
use here_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamic");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(30));
    g.bench_function("fig9_phased", |b| b.iter(|| run_fig9(Scale::Quick)));
    g.bench_function("fig10_ycsb_a", |b| b.iter(|| run_fig10(Scale::Quick)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
