//! Criterion benches for the security artefacts: Table 1, Table 2, Table 5,
//! and the heterogeneity demo.

use criterion::{criterion_group, criterion_main, Criterion};
use here_bench::experiments::security::{
    run_heterogeneity_demo, run_table1, run_table2, run_table5,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("security");
    g.sample_size(10);
    g.bench_function("tab1_vulnstats", |b| b.iter(run_table1));
    g.bench_function("tab5_classification", |b| b.iter(run_table5));
    g.bench_function("tab2_coverage", |b| b.iter(run_table2));
    g.bench_function("heterogeneity_demo", |b| b.iter(run_heterogeneity_demo));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
