//! Criterion bench for Fig. 17 (Sockperf latency).

use criterion::{criterion_group, criterion_main, Criterion};
use here_bench::experiments::network::run_fig17;
use here_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(30));
    g.bench_function("fig17_sockperf", |b| b.iter(|| run_fig17(Scale::Quick)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
