//! Criterion benches for Fig. 6 (migration) and Fig. 7 (resumption).

use criterion::{criterion_group, criterion_main, Criterion};
use here_bench::experiments::migration::{run_fig6_idle, run_fig6_loaded, run_fig7};
use here_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("migration");
    g.sample_size(10);
    g.bench_function("fig6_idle", |b| b.iter(|| run_fig6_idle(Scale::Quick)));
    g.bench_function("fig6_loaded", |b| b.iter(|| run_fig6_loaded(Scale::Quick)));
    g.bench_function("fig7_resumption", |b| {
        b.iter(|| run_fig7(Scale::Quick, false))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
