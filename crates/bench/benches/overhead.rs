//! Criterion bench for §8.7 (replication engine overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use here_bench::experiments::overhead::run_overhead;
use here_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("overhead");
    g.sample_size(10);
    g.bench_function("sec8_7_overhead", |b| b.iter(|| run_overhead(Scale::Quick)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
