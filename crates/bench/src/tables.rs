//! Fixed-width text rendering for experiment output.
//!
//! The `repro` binary prints every regenerated table and figure series as
//! aligned text, mirroring the rows the paper reports.

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// use here_bench::tables::render;
///
/// let out = render(
///     &["product", "cves"],
///     &[vec!["Xen".into(), "312".into()], vec!["KVM".into(), "74".into()]],
/// );
/// assert!(out.contains("Xen"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let rule: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&rule);
    out.push('\n');
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    out.push_str(&header_line.join("|"));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        out.push_str(&line.join("|"));
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

/// Formats a float with `digits` decimal places.
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let out = render(&["a", "long-header"], &[vec!["xxxxxx".into(), "1".into()]]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        // All lines are the same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    fn empty_rows_still_render_headers() {
        let out = render(&["x"], &[]);
        assert!(out.contains('x'));
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(10.0, 0), "10");
    }
}
