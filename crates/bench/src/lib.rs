//! # here-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§8) from
//! the simulated stack. Each experiment has a typed runner in
//! [`experiments`]; the `repro` binary prints them as text tables, and the
//! Criterion benches in `benches/` time scaled-down versions of the same
//! runners.
//!
//! | Paper artefact | Runner |
//! |---|---|
//! | Table 1 | [`experiments::security::run_table1`] |
//! | Table 2 | [`experiments::security::run_table2`] |
//! | Table 5 | [`experiments::security::run_table5`] |
//! | Fig. 5 | [`experiments::checkpoint::run_fig5`] |
//! | Fig. 6 | [`experiments::migration::run_fig6_idle`] / [`experiments::migration::run_fig6_loaded`] |
//! | Fig. 7 | [`experiments::migration::run_fig7`] |
//! | Fig. 8 | [`experiments::checkpoint::run_fig8`] |
//! | Fig. 9 | [`experiments::dynamic::run_fig9`] |
//! | Fig. 10 | [`experiments::dynamic::run_fig10`] |
//! | Figs. 11–13 | [`experiments::apps::run_ycsb_figure`] |
//! | Figs. 14–16 | [`experiments::apps::run_spec_figure`] |
//! | Fig. 17 | [`experiments::network::run_fig17`] |
//! | §8.7 | [`experiments::overhead::run_overhead`] |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod gate;
pub mod tables;

pub use experiments::Scale;
