//! `repro` — regenerate every table and figure of the HERE paper.
//!
//! ```text
//! repro [--quick] [EXPERIMENT...]
//! ```
//!
//! With no experiment arguments, runs everything. Experiments: `tab1`,
//! `tab2`, `tab5`, `demo`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`,
//! `fig11`, `fig12`, `fig13`, `fig14`, `fig15`, `fig16`, `fig17`,
//! `overhead`, `stages`, `datapath`, `observe`. `--quick` uses scaled-down
//! configurations. `datapath` measures real wall-clock throughput (not
//! cost-model time) and writes `BENCH_datapath.json`; `observe` measures
//! the telemetry layer's overhead and writes `BENCH_observe.json`.

use std::process::ExitCode;

use here_bench::experiments::apps::{
    run_spec_figure, run_ycsb_figure, Config, FIG11_CONFIGS, FIG12_CONFIGS, FIG13_CONFIGS,
};
use here_bench::experiments::checkpoint::{run_fig5, run_fig8};
use here_bench::experiments::datapath::run_datapath;
use here_bench::experiments::dynamic::{run_fig10, run_fig9};
use here_bench::experiments::migration::{run_fig6_idle, run_fig6_loaded, run_fig7};
use here_bench::experiments::network::run_fig17;
use here_bench::experiments::observe::run_observe;
use here_bench::experiments::overhead::run_overhead;
use here_bench::experiments::security::{
    run_heterogeneity_demo, run_table1, run_table2, run_table5,
};
use here_bench::experiments::stages::run_stages;
use here_bench::tables::{num, render};
use here_bench::Scale;
use here_core::Strategy;

const ALL: &[&str] = &[
    "tab1", "tab2", "tab5", "demo", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "overhead", "stages", "datapath",
    "observe",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let wanted: Vec<&str> = if wanted.is_empty() {
        ALL.to_vec()
    } else {
        wanted.iter().map(String::as_str).collect()
    };
    for w in &wanted {
        if !ALL.contains(w) {
            eprintln!("unknown experiment '{w}'; known: {}", ALL.join(", "));
            return ExitCode::FAILURE;
        }
    }
    println!(
        "HERE reproduction — scale: {}\n",
        if quick { "quick" } else { "paper" }
    );
    for w in wanted {
        run_one(w, scale);
    }
    ExitCode::SUCCESS
}

fn run_one(which: &str, scale: Scale) {
    match which {
        "tab1" => tab1(),
        "tab2" => tab2(),
        "tab5" => tab5(),
        "demo" => demo(),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "fig11" => ycsb_fig("Figure 11 — YCSB, fixed periods", scale, &FIG11_CONFIGS),
        "fig12" => ycsb_fig(
            "Figure 12 — YCSB, degradation targets",
            scale,
            &FIG12_CONFIGS,
        ),
        "fig13" => ycsb_fig(
            "Figure 13 — YCSB, degradation + T_max",
            scale,
            &FIG13_CONFIGS,
        ),
        "fig14" => spec_fig("Figure 14 — SPEC, fixed periods", scale, &FIG11_CONFIGS),
        "fig15" => spec_fig(
            "Figure 15 — SPEC, degradation targets",
            scale,
            &FIG12_CONFIGS,
        ),
        "fig16" => spec_fig(
            "Figure 16 — SPEC, degradation + T_max",
            scale,
            &FIG13_CONFIGS,
        ),
        "fig17" => fig17(scale),
        "overhead" => overhead(scale),
        "stages" => stages(scale),
        "datapath" => datapath(scale),
        "observe" => observe(scale),
        _ => unreachable!("validated in main"),
    }
}

fn tab1() {
    println!("Table 1 — DoS vulnerability stats by hypervisor, 2013-2020");
    let rows: Vec<Vec<String>> = run_table1()
        .into_iter()
        .map(|r| {
            vec![
                r.product.to_string(),
                r.cves.to_string(),
                r.avail.to_string(),
                format!("{}%", num(r.avail_pct, 1)),
                r.dos.to_string(),
                format!("{}%", num(r.dos_pct, 1)),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["Product", "CVEs", "Avail", "Avail%", "DoS", "DoS%"],
            &rows
        )
    );
}

fn tab2() {
    println!("Table 2 — HERE's coverage of DoS issues from various sources");
    println!("(host-failure cells validated by running a failover scenario each)");
    let rows: Vec<Vec<String>> = run_table2()
        .into_iter()
        .map(|r| {
            vec![
                r.source.label().to_string(),
                if r.guest_covered { "Yes" } else { "No" }.into(),
                if r.host_covered { "Yes" } else { "No" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Source", "Guest failure", "Host failure"], &rows)
    );
}

fn tab5() {
    println!("Table 5 — Distribution of DoS-only vulnerabilities (Xen)");
    let rows: Vec<Vec<String>> = run_table5()
        .into_iter()
        .map(|r| {
            vec![
                r.target.label().to_string(),
                r.outcome.to_string(),
                format!("{}%", num(r.share_pct, 1)),
                if r.here_applicable { "Applicable" } else { "-" }.into(),
            ]
        })
        .collect();
    println!("{}", render(&["Target", "Outcome", "Share", "HERE"], &rows));
}

fn demo() {
    println!("Heterogeneity demo — same zero-day, primary then failover re-attack");
    let d = run_heterogeneity_demo();
    let rows = vec![
        vec!["exploited CVE".into(), d.cve_id.clone()],
        vec![
            "HERE primary (Xen) downed".into(),
            d.here_primary_down.to_string(),
        ],
        vec![
            "HERE service survives re-attack on KVM replica".into(),
            d.here_service_survived.to_string(),
        ],
        vec![
            "HERE client-visible outage (ms)".into(),
            num(d.here_outage_ms, 1),
        ],
        vec![
            "homogeneous (Remus) survives re-attack".into(),
            d.homogeneous_service_survived.to_string(),
        ],
        vec![
            "CVEs shared by HERE's pair (Xen-PV / KVM+kvmtool)".into(),
            d.shared_cves_here_pair.to_string(),
        ],
        vec![
            "CVEs a Xen+QEMU / QEMU-KVM pair would share".into(),
            d.shared_cves_qemu_pair.to_string(),
        ],
    ];
    println!("{}", render(&["Property", "Value"], &rows));
}

fn fig5(scale: Scale) {
    println!("Figure 5 — linearity of page send time f(N) = alpha*N");
    let out = run_fig5(scale);
    println!(
        "  {} checkpoints observed; fit: slope = {} us/page, intercept = {} ms, r^2 = {}\n",
        out.points.len(),
        num(out.fit.slope * 1e6, 3),
        num(out.fit.intercept * 1e3, 2),
        num(out.fit.r_squared, 4),
    );
    // A decimated scatter for the series.
    let step = (out.points.len() / 12).max(1);
    let rows: Vec<Vec<String>> = out
        .points
        .iter()
        .step_by(step)
        .map(|&(n, t)| vec![format!("{:.0}", n / 1000.0), num(t, 3)])
        .collect();
    println!("{}", render(&["Dirty pages (K)", "Send time (s)"], &rows));
}

fn fig6(scale: Scale) {
    println!("Figure 6 (left) — migration time, idle VM");
    let rows: Vec<Vec<String>> = run_fig6_idle(scale)
        .iter()
        .map(|r| {
            vec![
                r.x.to_string(),
                num(r.xen_secs, 1),
                num(r.here_secs, 1),
                format!("{}%", num(r.improvement_pct(), 1)),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Memory (GiB)", "Xen (s)", "HERE (s)", "HERE gain"], &rows)
    );
    println!("Figure 6 (right) — migration time, VM under memory load");
    let rows: Vec<Vec<String>> = run_fig6_loaded(scale)
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.x),
                num(r.xen_secs, 1),
                num(r.here_secs, 1),
                format!("{}%", num(r.improvement_pct(), 1)),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Load", "Xen (s)", "HERE (s)", "HERE gain"], &rows)
    );
}

fn fig7(scale: Scale) {
    println!("Figure 7 — replica resumption time (paper: ~10 ms, flat in memory)");
    let idle = run_fig7(scale, false);
    let loaded = run_fig7(scale, true);
    let rows: Vec<Vec<String>> = idle
        .iter()
        .zip(&loaded)
        .map(|(i, l)| {
            vec![
                i.gib.to_string(),
                num(i.resumption_ms, 2),
                num(l.resumption_ms, 2),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Memory (GiB)", "Idle (ms)", "Loaded (ms)"], &rows)
    );
}

fn fig8(scale: Scale) {
    for (loaded, label) in [
        (false, "idle VM (panes a/c)"),
        (true, "30% load (panes b/d)"),
    ] {
        println!("Figure 8 — checkpoint transfer & degradation, {label}, T = 8 s");
        let rows: Vec<Vec<String>> = run_fig8(scale, loaded)
            .iter()
            .map(|r| {
                vec![
                    r.gib.to_string(),
                    num(r.remus_secs * 1e3, 1),
                    num(r.here_secs * 1e3, 1),
                    format!("{}%", num(r.improvement_pct(), 0)),
                    format!("{}%", num(r.remus_deg_pct, 2)),
                    format!("{}%", num(r.here_deg_pct, 2)),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "Memory (GiB)",
                    "Remus (ms)",
                    "HERE (ms)",
                    "HERE gain",
                    "Remus deg",
                    "HERE deg"
                ],
                &rows
            )
        );
    }
}

fn series_table(series: &[(f64, f64)], every: usize, col: &str) -> String {
    let rows: Vec<Vec<String>> = series
        .iter()
        .step_by(every.max(1))
        .map(|&(t, v)| vec![num(t, 1), num(v, 2)])
        .collect();
    render(&["Time (s)", col], &rows)
}

fn fig9(scale: Scale) {
    println!("Figure 9 — dynamic period vs load (D = 30%, T_max = 25 s, load 20->80->5%)");
    let out = run_fig9(scale);
    println!(
        "  steady-state mean overhead: {}% (set: {}%)\n",
        num(out.steady_mean_deg_pct, 1),
        num(out.target_pct, 0)
    );
    println!("Period over time:");
    print!(
        "{}",
        series_table(&out.period, out.period.len() / 18, "Period (s)")
    );
    println!("Measured overhead over time:");
    print!(
        "{}",
        series_table(&out.degradation, out.degradation.len() / 18, "Overhead (%)")
    );
    println!();
}

fn fig10(scale: Scale) {
    println!("Figure 10 — dynamic period under YCSB workload A (D = 30%)");
    let out = run_fig10(scale);
    println!(
        "  throughput: HERE {} ops/s vs baseline {} ops/s -> slowdown {}% (paper: 28406 vs 42779, 33.6%)\n",
        num(out.here_ops_per_sec, 0),
        num(out.baseline_ops_per_sec, 0),
        num(out.slowdown_pct(), 1)
    );
    println!("Period over time:");
    print!(
        "{}",
        series_table(
            &out.series.period,
            out.series.period.len() / 15,
            "Period (s)"
        )
    );
    println!();
}

fn ycsb_fig(title: &str, scale: Scale, configs: &[Config]) {
    println!("{title}");
    let bars = run_ycsb_figure(scale, configs);
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.mix.to_string(),
                b.config.label().to_string(),
                num(b.ops_per_sec / 1000.0, 1),
                format!("{}%", num(b.degradation_pct, 0)),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Workload", "Config", "Kops/s", "Degradation"], &rows)
    );
}

fn spec_fig(title: &str, scale: Scale, configs: &[Config]) {
    println!("{title}");
    let bars = run_spec_figure(scale, configs);
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.benchmark.name().to_string(),
                b.config.label().to_string(),
                num(b.rate, 2),
                format!("{}%", num(b.degradation_pct, 0)),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["Benchmark", "Config", "Rate (ops/s)", "Degradation"],
            &rows
        )
    );
}

fn fig17(scale: Scale) {
    println!("Figure 17 — Sockperf mean latency (log-scale in the paper)");
    let bars = run_fig17(scale);
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                format!("load {}", b.load.label()),
                b.config.label().to_string(),
                num(b.mean_latency_us, 1),
                num(b.mean_latency_us / 1000.0, 2),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["Load", "Config", "Latency (us)", "Latency (ms)"], &rows)
    );
}

fn stages(scale: Scale) {
    println!("Pipeline stage breakdown — t = alpha*N/P + C (Eq. 4), 30% load, T = 4 s");
    for strategy in [Strategy::Remus, Strategy::Here] {
        let out = run_stages(scale, strategy);
        println!(
            "  {:?}: {} checkpoints, trace {}",
            out.strategy,
            out.checkpoints,
            if out.complete {
                "complete"
            } else {
                "INCOMPLETE"
            }
        );
        let rows: Vec<Vec<String>> = out
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.label().to_string(),
                    num(r.total_secs, 3),
                    format!("{}%", num(r.share_pct, 1)),
                    num(r.mean_ms, 2),
                ]
            })
            .collect();
        println!(
            "{}",
            render(&["Stage", "Total (s)", "Share", "Mean (ms)"], &rows)
        );
    }
}

fn datapath(scale: Scale) {
    println!("Datapath — measured wall-clock throughput of the checkpoint data plane");
    let out = run_datapath(scale);
    println!(
        "  {} pages ({} MiB materialized payload), {} rounds, {} vCPUs, host has {} CPU core(s)",
        out.pages,
        num(out.pages as f64 * 4096.0 / (1024.0 * 1024.0), 0),
        out.rounds,
        out.vcpus,
        out.host_cpus,
    );
    println!(
        "  measured alpha: {} us/page (single lane); cost model alpha: {} us/page",
        num(out.measured_alpha_us_per_page, 3),
        num(out.analytic_alpha_us_per_page, 3),
    );
    println!(
        "  legacy serial reference: {} ms -> new single-lane encode is {}x faster\n",
        num(out.legacy_encode_ms, 1),
        num(out.legacy_speedup, 2),
    );
    let rows: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                num(r.harvest_ms, 2),
                num(r.encode_ms, 2),
                num(r.decode_restore_ms, 2),
                num(r.total_ms, 2),
                num(r.throughput_mib_per_s, 0),
                num(r.measured_parallelism, 2),
                num(r.analytic_parallelism, 2),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "Workers",
                "Harvest (ms)",
                "Encode (ms)",
                "Restore (ms)",
                "Total (ms)",
                "MiB/s",
                "Measured P",
                "Model P"
            ],
            &rows
        )
    );
    match std::fs::write("BENCH_datapath.json", &out.json) {
        Ok(()) => println!("  wrote BENCH_datapath.json"),
        Err(e) => eprintln!("  could not write BENCH_datapath.json: {e}"),
    }
}

fn observe(scale: Scale) {
    println!("Observe — telemetry-layer overhead and run snapshot");
    let out = run_observe(scale);
    println!(
        "  overhead probe: {} pages, {}-lane materialized encode, {} rounds, host has {} CPU core(s)",
        out.pages, out.lanes, out.rounds, out.host_cpus,
    );
    println!(
        "  baseline {} ms -> instrumented {} ms: overhead {}% (bar: < 5%)",
        num(out.baseline_ms, 3),
        num(out.instrumented_ms, 3),
        num(out.overhead_pct, 2),
    );
    println!(
        "  scenario telemetry: {} metric families, {} flight events ({} dropped), \
         SLO {}/{} checkpoints breached\n",
        out.metric_count,
        out.flight_events_recorded,
        out.flight_events_dropped,
        out.slo_breaches,
        out.slo_evaluated,
    );
    match std::fs::write("BENCH_observe.json", &out.json) {
        Ok(()) => println!("  wrote BENCH_observe.json"),
        Err(e) => eprintln!("  could not write BENCH_observe.json: {e}"),
    }
}

fn overhead(scale: Scale) {
    println!("Section 8.7 — replication engine overhead (paper: 62% CPU, 314 MB)");
    let out = run_overhead(scale);
    let rows = vec![
        vec!["CPU (% of one core)".into(), num(out.cpu_core_pct, 1)],
        vec!["RSS (MiB)".into(), num(out.rss_mib, 1)],
        vec!["checkpoints in window".into(), out.checkpoints.to_string()],
    ];
    println!("{}", render(&["Metric", "Value"], &rows));
}
