//! `repro` — regenerate every table and figure of the HERE paper.
//!
//! ```text
//! repro [--quick] [--list] [--format json|prometheus|chrome]
//!       [--lanes N] [--chunk-pages P] [EXPERIMENT...]
//! repro replay <bundle>
//! ```
//!
//! With no experiment arguments, runs everything. Experiments: `tab1`,
//! `tab2`, `tab5`, `demo`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`,
//! `fig11`, `fig12`, `fig13`, `fig14`, `fig15`, `fig16`, `fig17`,
//! `overhead`, `stages`, `datapath`, `observe`, `analyze`, `chaos`,
//! `topology`, `health`, `postmortem`, `wire`. `--list` prints every experiment with its description and
//! artifacts and exits. `--quick` uses scaled-down configurations.
//! `datapath` measures real wall-clock throughput (not cost-model time)
//! and writes `target/repro/BENCH_datapath.json`; `--lanes` replaces its
//! default 1/2/4/8 lane sweep with `[1, N]` and `--chunk-pages` overrides
//! the streamed rows' chunk size; `observe` measures the
//! telemetry layer's overhead and writes `target/repro/BENCH_observe.json`;
//! `analyze` runs the trace analyzer and writes the run's Chrome trace to
//! `target/repro/trace_analyze.json`; `chaos` runs seeded fault plans
//! against the replication loop and writes `target/repro/BENCH_chaos.json`;
//! `topology` sweeps replica count, quorum size and fan-out mode and
//! writes `target/repro/BENCH_topology.json`; `health` arms the
//! replication health plane and writes `target/repro/BENCH_health.json`
//! plus the alert-log and series JSONL exports; `postmortem` captures an
//! incident bundle from an induced quorum-at-risk partition, replays it
//! byte-identically and diffs it against the fault-stripped baseline,
//! writing `target/repro/BENCH_postmortem.json` plus the bundle and the
//! forensics reports; `wire` compares wire format v3 (epoch-delta
//! columnar records) against the v2 stream on two workloads plus the
//! negotiation matrix and writes `target/repro/BENCH_wire.json`.
//! `repro replay <bundle>` re-executes a previously
//! captured `incident.bundle` and verifies the reproduction.
//!
//! Everything printed is also teed to `target/repro/repro_output.txt`.
//! With `--format`, every scenario run additionally dumps its telemetry
//! under `target/repro/` in the chosen format: `json` writes the span
//! stream as JSONL, `prometheus` the metrics exposition, `chrome` a
//! Chrome trace-event document.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use here_bench::experiments::analyze::run_analyze;
use here_bench::experiments::apps::{
    run_spec_figure, run_ycsb_figure, Config, FIG11_CONFIGS, FIG12_CONFIGS, FIG13_CONFIGS,
};
use here_bench::experiments::chaos::{run_chaos, CRASH_EPOCH};
use here_bench::experiments::checkpoint::{run_fig5, run_fig8};
use here_bench::experiments::datapath::{run_datapath_with, DatapathOptions, OVERLAP_WINDOW};
use here_bench::experiments::dynamic::{run_fig10, run_fig9};
use here_bench::experiments::health::run_health;
use here_bench::experiments::migration::{run_fig6_idle, run_fig6_loaded, run_fig7};
use here_bench::experiments::network::run_fig17;
use here_bench::experiments::observe::run_observe;
use here_bench::experiments::overhead::run_overhead;
use here_bench::experiments::postmortem::run_postmortem;
use here_bench::experiments::security::{
    run_heterogeneity_demo, run_table1, run_table2, run_table5,
};
use here_bench::experiments::stages::run_stages;
use here_bench::experiments::topology::run_topology;
use here_bench::experiments::wire::run_wire;
use here_bench::tables::{num, render};
use here_bench::Scale;
use here_core::Strategy;

const ALL: &[&str] = &[
    "tab1",
    "tab2",
    "tab5",
    "demo",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "overhead",
    "stages",
    "datapath",
    "observe",
    "analyze",
    "chaos",
    "topology",
    "health",
    "postmortem",
    "wire",
];

/// One-line description and artifacts of every experiment, for `--list`.
/// Kept parallel to [`ALL`] (a unit test enforces it).
const CATALOG: &[(&str, &str, &str)] = &[
    (
        "tab1",
        "DoS vulnerability stats by hypervisor, 2013-2020",
        "-",
    ),
    (
        "tab2",
        "HERE's coverage of DoS issues from various sources",
        "-",
    ),
    (
        "tab5",
        "distribution of DoS-only vulnerabilities (Xen)",
        "-",
    ),
    (
        "demo",
        "same zero-day re-attacked across the heterogeneous pair",
        "-",
    ),
    ("fig5", "linearity of page send time f(N) = alpha*N", "-"),
    (
        "fig6",
        "migration time vs memory size, idle and loaded",
        "-",
    ),
    ("fig7", "replica resumption time vs memory size", "-"),
    (
        "fig8",
        "checkpoint transfer and degradation vs memory size",
        "-",
    ),
    (
        "fig9",
        "dynamic period vs load step (D = 30%, T_max = 25 s)",
        "-",
    ),
    ("fig10", "dynamic period under YCSB workload A", "-"),
    ("fig11", "YCSB throughput, fixed periods", "-"),
    ("fig12", "YCSB throughput, degradation targets", "-"),
    ("fig13", "YCSB throughput, degradation + T_max", "-"),
    ("fig14", "SPEC rates, fixed periods", "-"),
    ("fig15", "SPEC rates, degradation targets", "-"),
    ("fig16", "SPEC rates, degradation + T_max", "-"),
    ("fig17", "Sockperf mean latency under replication", "-"),
    (
        "overhead",
        "replication engine CPU and memory overhead",
        "-",
    ),
    (
        "stages",
        "pipeline stage breakdown vs the Eq. 4 cost model",
        "-",
    ),
    (
        "datapath",
        "measured wall-clock throughput of the checkpoint data plane",
        "BENCH_datapath.json",
    ),
    (
        "observe",
        "telemetry-layer overhead and run snapshot",
        "BENCH_observe.json",
    ),
    (
        "analyze",
        "causal trace analysis: critical path, stragglers, breaches",
        "trace_analyze.json, trace_analyze.jsonl, BENCH_analyze.json",
    ),
    (
        "chaos",
        "seeded fault injection, retry/backoff, failover invariants",
        "BENCH_chaos.json",
    ),
    (
        "topology",
        "replica count x quorum x fan-out sweep with bit-compat proof",
        "BENCH_topology.json",
    ),
    (
        "health",
        "health plane: per-replica states, series, deterministic alerts",
        "BENCH_health.json, health_alerts.jsonl, health_series.jsonl",
    ),
    (
        "postmortem",
        "postmortem plane: incident capture, bundle replay, differential forensics",
        "BENCH_postmortem.json, incident.bundle, postmortem.json, postmortem_report.txt",
    ),
    (
        "wire",
        "wire format v3 vs v2: bytes per epoch, transfer time, negotiation",
        "BENCH_wire.json",
    ),
];

/// Directory all artefacts land in (relative to the invocation cwd, like
/// the old top-level `BENCH_*.json` files were).
const OUT_DIR: &str = "target/repro";

/// Tee target for everything printed (None when the directory could not
/// be created — output then goes to stdout only).
static TEE: Mutex<Option<std::fs::File>> = Mutex::new(None);

macro_rules! out {
    ($($arg:tt)*) => {{
        let s = format!($($arg)*);
        print!("{s}");
        if let Some(f) = TEE.lock().unwrap().as_mut() {
            let _ = f.write_all(s.as_bytes());
        }
    }};
}

macro_rules! outln {
    () => { out!("\n") };
    ($($arg:tt)*) => {{
        let s = format!($($arg)*);
        println!("{s}");
        if let Some(f) = TEE.lock().unwrap().as_mut() {
            let _ = f.write_all(s.as_bytes());
            let _ = f.write_all(b"\n");
        }
    }};
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DumpFormat {
    Json,
    Prometheus,
    Chrome,
}

/// Installs a run observer that dumps every scenario run's telemetry in
/// the chosen format under [`OUT_DIR`].
fn install_dumper(format: DumpFormat) {
    static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);
    here_core::set_run_observer(move |report| {
        let n = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
        let slug: String = report
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        let (path, body) = match format {
            DumpFormat::Json => (
                format!("{OUT_DIR}/run-{n:03}-{slug}.spans.jsonl"),
                here_telemetry::spans_jsonl(&report.spans),
            ),
            DumpFormat::Prometheus => (
                format!("{OUT_DIR}/run-{n:03}-{slug}.prom"),
                report
                    .telemetry
                    .as_ref()
                    .map(|t| t.prometheus.clone())
                    .unwrap_or_default(),
            ),
            DumpFormat::Chrome => (
                format!("{OUT_DIR}/run-{n:03}-{slug}.trace.json"),
                here_telemetry::chrome_trace(&report.spans),
            ),
        };
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("  could not write {path}: {e}");
        }
    });
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("replay") {
        return replay_bundle(args.get(1).map(String::as_str));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let mut format = None;
    let mut datapath_opts = DatapathOptions::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {}
            "--lanes" => {
                i += 1;
                datapath_opts.lanes = match args.get(i).and_then(|v| v.parse::<u32>().ok()) {
                    Some(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--lanes expects a positive lane count");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--chunk-pages" => {
                i += 1;
                datapath_opts.chunk_pages = match args.get(i).and_then(|v| v.parse::<u32>().ok()) {
                    Some(p) if p >= 1 => Some(p),
                    _ => {
                        eprintln!("--chunk-pages expects a positive page count");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--list" => {
                println!("experiments ({} total):", CATALOG.len());
                for (name, description, artifacts) in CATALOG {
                    println!("  {name:<9} {description}");
                    if *artifacts != "-" {
                        println!("  {:<9}   writes {artifacts}", "");
                    }
                }
                println!("\nall artefacts land under {OUT_DIR}/; everything printed is teed to {OUT_DIR}/repro_output.txt");
                return ExitCode::SUCCESS;
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("json") => Some(DumpFormat::Json),
                    Some("prometheus") => Some(DumpFormat::Prometheus),
                    Some("chrome") => Some(DumpFormat::Chrome),
                    other => {
                        eprintln!(
                            "--format expects json|prometheus|chrome, got {}",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::FAILURE;
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                return ExitCode::FAILURE;
            }
            exp => wanted.push(exp.to_lowercase()),
        }
        i += 1;
    }
    let wanted: Vec<&str> = if wanted.is_empty() {
        ALL.to_vec()
    } else {
        wanted.iter().map(String::as_str).collect()
    };
    for w in &wanted {
        if !ALL.contains(w) {
            eprintln!("unknown experiment '{w}'; known: {}", ALL.join(", "));
            return ExitCode::FAILURE;
        }
    }
    match std::fs::create_dir_all(OUT_DIR) {
        Ok(()) => {
            *TEE.lock().unwrap() = std::fs::File::create(format!("{OUT_DIR}/repro_output.txt"))
                .map_err(|e| eprintln!("tee disabled: {e}"))
                .ok();
        }
        Err(e) => eprintln!("tee disabled: could not create {OUT_DIR}: {e}"),
    }
    if let Some(format) = format {
        install_dumper(format);
    }
    outln!(
        "HERE reproduction — scale: {}\n",
        if quick { "quick" } else { "paper" }
    );
    for w in wanted {
        run_one(w, scale, datapath_opts);
    }
    here_core::clear_run_observer();
    ExitCode::SUCCESS
}

fn run_one(which: &str, scale: Scale, datapath_opts: DatapathOptions) {
    match which {
        "tab1" => tab1(),
        "tab2" => tab2(),
        "tab5" => tab5(),
        "demo" => demo(),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "fig11" => ycsb_fig("Figure 11 — YCSB, fixed periods", scale, &FIG11_CONFIGS),
        "fig12" => ycsb_fig(
            "Figure 12 — YCSB, degradation targets",
            scale,
            &FIG12_CONFIGS,
        ),
        "fig13" => ycsb_fig(
            "Figure 13 — YCSB, degradation + T_max",
            scale,
            &FIG13_CONFIGS,
        ),
        "fig14" => spec_fig("Figure 14 — SPEC, fixed periods", scale, &FIG11_CONFIGS),
        "fig15" => spec_fig(
            "Figure 15 — SPEC, degradation targets",
            scale,
            &FIG12_CONFIGS,
        ),
        "fig16" => spec_fig(
            "Figure 16 — SPEC, degradation + T_max",
            scale,
            &FIG13_CONFIGS,
        ),
        "fig17" => fig17(scale),
        "overhead" => overhead(scale),
        "stages" => stages(scale),
        "datapath" => datapath(scale, datapath_opts),
        "observe" => observe(scale),
        "analyze" => analyze(scale),
        "chaos" => chaos(scale),
        "topology" => topology(scale),
        "health" => health(scale),
        "postmortem" => postmortem(scale),
        "wire" => wire(scale),
        _ => unreachable!("validated in main"),
    }
}

fn tab1() {
    outln!("Table 1 — DoS vulnerability stats by hypervisor, 2013-2020");
    let rows: Vec<Vec<String>> = run_table1()
        .into_iter()
        .map(|r| {
            vec![
                r.product.to_string(),
                r.cves.to_string(),
                r.avail.to_string(),
                format!("{}%", num(r.avail_pct, 1)),
                r.dos.to_string(),
                format!("{}%", num(r.dos_pct, 1)),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(
            &["Product", "CVEs", "Avail", "Avail%", "DoS", "DoS%"],
            &rows
        )
    );
}

fn tab2() {
    outln!("Table 2 — HERE's coverage of DoS issues from various sources");
    outln!("(host-failure cells validated by running a failover scenario each)");
    let rows: Vec<Vec<String>> = run_table2()
        .into_iter()
        .map(|r| {
            vec![
                r.source.label().to_string(),
                if r.guest_covered { "Yes" } else { "No" }.into(),
                if r.host_covered { "Yes" } else { "No" }.into(),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(&["Source", "Guest failure", "Host failure"], &rows)
    );
}

fn tab5() {
    outln!("Table 5 — Distribution of DoS-only vulnerabilities (Xen)");
    let rows: Vec<Vec<String>> = run_table5()
        .into_iter()
        .map(|r| {
            vec![
                r.target.label().to_string(),
                r.outcome.to_string(),
                format!("{}%", num(r.share_pct, 1)),
                if r.here_applicable { "Applicable" } else { "-" }.into(),
            ]
        })
        .collect();
    outln!("{}", render(&["Target", "Outcome", "Share", "HERE"], &rows));
}

fn demo() {
    outln!("Heterogeneity demo — same zero-day, primary then failover re-attack");
    let d = run_heterogeneity_demo();
    let rows = vec![
        vec!["exploited CVE".into(), d.cve_id.clone()],
        vec![
            "HERE primary (Xen) downed".into(),
            d.here_primary_down.to_string(),
        ],
        vec![
            "HERE service survives re-attack on KVM replica".into(),
            d.here_service_survived.to_string(),
        ],
        vec![
            "HERE client-visible outage (ms)".into(),
            num(d.here_outage_ms, 1),
        ],
        vec![
            "homogeneous (Remus) survives re-attack".into(),
            d.homogeneous_service_survived.to_string(),
        ],
        vec![
            "CVEs shared by HERE's pair (Xen-PV / KVM+kvmtool)".into(),
            d.shared_cves_here_pair.to_string(),
        ],
        vec![
            "CVEs a Xen+QEMU / QEMU-KVM pair would share".into(),
            d.shared_cves_qemu_pair.to_string(),
        ],
    ];
    outln!("{}", render(&["Property", "Value"], &rows));
}

fn fig5(scale: Scale) {
    outln!("Figure 5 — linearity of page send time f(N) = alpha*N");
    let out = run_fig5(scale);
    outln!(
        "  {} checkpoints observed; fit: slope = {} us/page, intercept = {} ms, r^2 = {}\n",
        out.points.len(),
        num(out.fit.slope * 1e6, 3),
        num(out.fit.intercept * 1e3, 2),
        num(out.fit.r_squared, 4),
    );
    // A decimated scatter for the series.
    let step = (out.points.len() / 12).max(1);
    let rows: Vec<Vec<String>> = out
        .points
        .iter()
        .step_by(step)
        .map(|&(n, t)| vec![format!("{:.0}", n / 1000.0), num(t, 3)])
        .collect();
    outln!("{}", render(&["Dirty pages (K)", "Send time (s)"], &rows));
}

fn fig6(scale: Scale) {
    outln!("Figure 6 (left) — migration time, idle VM");
    let rows: Vec<Vec<String>> = run_fig6_idle(scale)
        .iter()
        .map(|r| {
            vec![
                r.x.to_string(),
                num(r.xen_secs, 1),
                num(r.here_secs, 1),
                format!("{}%", num(r.improvement_pct(), 1)),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(&["Memory (GiB)", "Xen (s)", "HERE (s)", "HERE gain"], &rows)
    );
    outln!("Figure 6 (right) — migration time, VM under memory load");
    let rows: Vec<Vec<String>> = run_fig6_loaded(scale)
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.x),
                num(r.xen_secs, 1),
                num(r.here_secs, 1),
                format!("{}%", num(r.improvement_pct(), 1)),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(&["Load", "Xen (s)", "HERE (s)", "HERE gain"], &rows)
    );
}

fn fig7(scale: Scale) {
    outln!("Figure 7 — replica resumption time (paper: ~10 ms, flat in memory)");
    let idle = run_fig7(scale, false);
    let loaded = run_fig7(scale, true);
    let rows: Vec<Vec<String>> = idle
        .iter()
        .zip(&loaded)
        .map(|(i, l)| {
            vec![
                i.gib.to_string(),
                num(i.resumption_ms, 2),
                num(l.resumption_ms, 2),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(&["Memory (GiB)", "Idle (ms)", "Loaded (ms)"], &rows)
    );
}

fn fig8(scale: Scale) {
    for (loaded, label) in [
        (false, "idle VM (panes a/c)"),
        (true, "30% load (panes b/d)"),
    ] {
        outln!("Figure 8 — checkpoint transfer & degradation, {label}, T = 8 s");
        let rows: Vec<Vec<String>> = run_fig8(scale, loaded)
            .iter()
            .map(|r| {
                vec![
                    r.gib.to_string(),
                    num(r.remus_secs * 1e3, 1),
                    num(r.here_secs * 1e3, 1),
                    format!("{}%", num(r.improvement_pct(), 0)),
                    format!("{}%", num(r.remus_deg_pct, 2)),
                    format!("{}%", num(r.here_deg_pct, 2)),
                ]
            })
            .collect();
        outln!(
            "{}",
            render(
                &[
                    "Memory (GiB)",
                    "Remus (ms)",
                    "HERE (ms)",
                    "HERE gain",
                    "Remus deg",
                    "HERE deg"
                ],
                &rows
            )
        );
    }
}

fn series_table(series: &[(f64, f64)], every: usize, col: &str) -> String {
    let rows: Vec<Vec<String>> = series
        .iter()
        .step_by(every.max(1))
        .map(|&(t, v)| vec![num(t, 1), num(v, 2)])
        .collect();
    render(&["Time (s)", col], &rows)
}

fn fig9(scale: Scale) {
    outln!("Figure 9 — dynamic period vs load (D = 30%, T_max = 25 s, load 20->80->5%)");
    let out = run_fig9(scale);
    outln!(
        "  steady-state mean overhead: {}% (set: {}%)\n",
        num(out.steady_mean_deg_pct, 1),
        num(out.target_pct, 0)
    );
    outln!("Period over time:");
    out!(
        "{}",
        series_table(&out.period, out.period.len() / 18, "Period (s)")
    );
    outln!("Measured overhead over time:");
    out!(
        "{}",
        series_table(&out.degradation, out.degradation.len() / 18, "Overhead (%)")
    );
    outln!();
}

fn fig10(scale: Scale) {
    outln!("Figure 10 — dynamic period under YCSB workload A (D = 30%)");
    let out = run_fig10(scale);
    outln!(
        "  throughput: HERE {} ops/s vs baseline {} ops/s -> slowdown {}% (paper: 28406 vs 42779, 33.6%)\n",
        num(out.here_ops_per_sec, 0),
        num(out.baseline_ops_per_sec, 0),
        num(out.slowdown_pct(), 1)
    );
    outln!("Period over time:");
    out!(
        "{}",
        series_table(
            &out.series.period,
            out.series.period.len() / 15,
            "Period (s)"
        )
    );
    outln!();
}

fn ycsb_fig(title: &str, scale: Scale, configs: &[Config]) {
    outln!("{title}");
    let bars = run_ycsb_figure(scale, configs);
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.mix.to_string(),
                b.config.label().to_string(),
                num(b.ops_per_sec / 1000.0, 1),
                format!("{}%", num(b.degradation_pct, 0)),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(&["Workload", "Config", "Kops/s", "Degradation"], &rows)
    );
}

fn spec_fig(title: &str, scale: Scale, configs: &[Config]) {
    outln!("{title}");
    let bars = run_spec_figure(scale, configs);
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.benchmark.name().to_string(),
                b.config.label().to_string(),
                num(b.rate, 2),
                format!("{}%", num(b.degradation_pct, 0)),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(
            &["Benchmark", "Config", "Rate (ops/s)", "Degradation"],
            &rows
        )
    );
}

fn fig17(scale: Scale) {
    outln!("Figure 17 — Sockperf mean latency (log-scale in the paper)");
    let bars = run_fig17(scale);
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                format!("load {}", b.load.label()),
                b.config.label().to_string(),
                num(b.mean_latency_us, 1),
                num(b.mean_latency_us / 1000.0, 2),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(&["Load", "Config", "Latency (us)", "Latency (ms)"], &rows)
    );
}

fn stages(scale: Scale) {
    outln!("Pipeline stage breakdown — t = alpha*N/P + C (Eq. 4), 30% load, T = 4 s");
    for strategy in [Strategy::Remus, Strategy::Here] {
        let out = run_stages(scale, strategy);
        outln!(
            "  {:?}: {} checkpoints, trace {}",
            out.strategy,
            out.checkpoints,
            if out.complete {
                "complete"
            } else {
                "INCOMPLETE"
            }
        );
        let rows: Vec<Vec<String>> = out
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.label().to_string(),
                    num(r.total_secs, 3),
                    format!("{}%", num(r.share_pct, 1)),
                    num(r.mean_ms, 2),
                ]
            })
            .collect();
        outln!(
            "{}",
            render(&["Stage", "Total (s)", "Share", "Mean (ms)"], &rows)
        );
    }
}

/// Writes an artefact under [`OUT_DIR`], reporting either way.
fn write_artifact(name: &str, body: &str) {
    let path = format!("{OUT_DIR}/{name}");
    let _ = std::fs::create_dir_all(OUT_DIR);
    match std::fs::write(&path, body) {
        Ok(()) => outln!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}

fn datapath(scale: Scale, opts: DatapathOptions) {
    outln!("Datapath — measured wall-clock throughput of the checkpoint data plane");
    let out = run_datapath_with(scale, opts);
    outln!(
        "  {} pages ({} MiB materialized payload), {} rounds, {} vCPUs, host has {} CPU core(s)",
        out.pages,
        num(out.pages as f64 * 4096.0 / (1024.0 * 1024.0), 0),
        out.rounds,
        out.vcpus,
        out.host_cpus,
    );
    outln!(
        "  streamed rows: {}-page chunks through a depth-{} overlap window, decode under encode",
        out.chunk_pages,
        OVERLAP_WINDOW,
    );
    outln!(
        "  measured alpha: {} us/page (single lane); cost model alpha: {} us/page",
        num(out.measured_alpha_us_per_page, 3),
        num(out.analytic_alpha_us_per_page, 3),
    );
    outln!(
        "  legacy serial reference: {} ms -> new single-lane encode is {}x faster",
        num(out.legacy_encode_ms, 1),
        num(out.legacy_speedup, 2),
    );
    outln!(
        "  wire density: v2 meta {} KiB vs v3 columns {} KiB -> {}x fewer bytes\n",
        num(out.v2_meta_bytes as f64 / 1024.0, 1),
        num(out.v3_columns_bytes as f64 / 1024.0, 1),
        num(out.v3_meta_reduction, 2),
    );
    let rows: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                num(r.harvest_ms, 2),
                num(r.encode_ms, 2),
                num(r.decode_restore_ms, 2),
                num(r.streamed_ms, 2),
                num(r.v3_meta_ms, 2),
                r.steals.to_string(),
                num(r.occupancy_pct, 0),
                num(r.total_ms, 2),
                num(r.throughput_mib_per_s, 0),
                num(r.measured_parallelism, 2),
                num(r.analytic_parallelism, 2),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(
            &[
                "Workers",
                "Harvest (ms)",
                "Encode (ms)",
                "Restore (ms)",
                "Streamed (ms)",
                "v3 meta (ms)",
                "Steals",
                "Occ%",
                "Total (ms)",
                "MiB/s",
                "Measured P",
                "Model P"
            ],
            &rows
        )
    );
    outln!("  virtual overlap (deterministic, cost-model time):");
    for s in &out.virtual_overlap {
        outln!(
            "    {}: pause {} ms -> {} ms over {} epochs ({}% shorter with encode/transfer overlap)",
            s.workload,
            num(s.pause_ms_barrier, 2),
            num(s.pause_ms_overlap, 2),
            s.checkpoints,
            num(s.reduction_pct, 1),
        );
    }
    outln!();
    write_artifact("BENCH_datapath.json", &out.json);
}

fn observe(scale: Scale) {
    outln!("Observe — telemetry-layer overhead and run snapshot");
    let out = run_observe(scale);
    outln!(
        "  overhead probe: {} pages, {}-lane materialized encode, {} rounds, host has {} CPU core(s)",
        out.pages, out.lanes, out.rounds, out.host_cpus,
    );
    outln!(
        "  baseline {} ms -> instrumented {} ms: overhead {}% (bar: < 5%)",
        num(out.baseline_ms, 3),
        num(out.instrumented_ms, 3),
        num(out.overhead_pct, 2),
    );
    outln!(
        "  scenario telemetry: {} metric families, {} flight events ({} dropped), \
         SLO {}/{} checkpoints breached\n",
        out.metric_count,
        out.flight_events_recorded,
        out.flight_events_dropped,
        out.slo_breaches,
        out.slo_evaluated,
    );
    write_artifact("BENCH_observe.json", &out.json);
}

fn analyze(scale: Scale) {
    outln!("Analyze — causal trace: critical path, stragglers, oscillation, breaches");
    let out = run_analyze(scale);
    outln!(
        "  {} spans over {} checkpoints; failover captured: {}; tree: {} nesting \
         violation(s), {} unresolved link(s)",
        out.span_count,
        out.checkpoints,
        out.failover_captured,
        out.analysis.nesting_violations,
        out.analysis.unresolved_links,
    );
    outln!(
        "  worst epoch attributes {}% of its pause to named stage spans (bar: >= 95%)\n",
        num(out.analysis.min_attributed_fraction * 100.0, 2),
    );
    let step = (out.analysis.epochs.len() / 10).max(1);
    let rows: Vec<Vec<String>> = out
        .analysis
        .epochs
        .iter()
        .step_by(step)
        .map(|e| {
            vec![
                e.seq.to_string(),
                num(e.pause.as_secs_f64() * 1e3, 2),
                format!("{}%", num(e.attributed_fraction * 100.0, 1)),
                e.dominant_stage.to_string(),
                format!("{}%", num(e.model_residual_pct, 2)),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(
            &[
                "Epoch",
                "Pause (ms)",
                "Attributed",
                "Dominant stage",
                "vs model"
            ],
            &rows
        )
    );
    let osc = &out.analysis.oscillation;
    outln!(
        "  period controller: {} decisions, {} direction flips (ratio {}), \
         {} walk-backs, {} midpoint jumps -> {}",
        osc.decisions,
        osc.direction_flips,
        num(osc.flip_ratio, 2),
        osc.walk_backs,
        osc.midpoint_jumps,
        if osc.oscillating {
            "OSCILLATING"
        } else {
            "stable"
        },
    );
    outln!(
        "  straggler lanes (wall > 1.5x epoch median): {}",
        out.analysis.stragglers.len()
    );
    for s in out.analysis.stragglers.iter().take(5) {
        outln!(
            "    epoch {} lane {}: {} us vs median {} us ({}x)",
            s.seq,
            s.lane,
            num(s.wall_nanos as f64 / 1e3, 1),
            num(s.median_wall_nanos as f64 / 1e3, 1),
            num(s.ratio(), 2),
        );
    }
    outln!(
        "  SLO breach root causes: {}",
        out.analysis.breach_roots.len()
    );
    for b in out.analysis.breach_roots.iter().take(5) {
        outln!(
            "    epoch {}: {:?} {} > bound {} — dominant stage '{}' at {} ms \
             ({}% vs trailing mean)",
            b.seq,
            b.kind,
            num(b.measured, 4),
            num(b.bound, 4),
            b.dominant_stage,
            num(b.stage_duration.as_secs_f64() * 1e3, 2),
            num(b.growth_pct, 1),
        );
    }
    outln!();
    write_artifact("trace_analyze.json", &out.chrome_json);
    write_artifact("trace_analyze.jsonl", &out.jsonl);
    write_artifact("BENCH_analyze.json", &out.json);
}

fn chaos(scale: Scale) {
    outln!("Chaos — seeded fault injection, transfer retry/backoff, failover invariants");
    let out = run_chaos(scale);
    outln!(
        "  sweep (plan seed {}, run seed {}): {} faults injected -> {} retries, \
         {} recoveries, {} epoch(s) aborted",
        out.plan_seed,
        out.run_seed,
        out.sweep.faults_injected,
        out.sweep.transfer_retries,
        out.sweep.transfer_recoveries,
        out.sweep.epochs_aborted,
    );
    outln!(
        "  {} commits over {} checkpoint records; worst commit-to-commit staleness {} ms",
        out.commits,
        out.checkpoints,
        num(out.worst_staleness_ms, 1),
    );
    outln!(
        "  mid-transfer crash at epoch {}: resumed from checkpoint {} (last acked {}), \
         detection {} ms, outage {} ms -> last-acked invariant {}",
        CRASH_EPOCH,
        out.crash_resumed_from,
        out.crash_last_committed,
        num(out.detection_ms, 1),
        num(out.outage_ms, 1),
        if out.crash_resumes_last_acked {
            "HOLDS"
        } else {
            "VIOLATED"
        },
    );
    outln!(
        "  same-seed rerun fingerprint 0x{:016x}: {}\n",
        out.fingerprint,
        if out.deterministic {
            "byte-identical replay"
        } else {
            "MISMATCH"
        },
    );
    write_artifact("BENCH_chaos.json", &out.json);
}

fn topology(scale: Scale) {
    outln!("Topology — replica count x quorum x fan-out, commit latency and staleness");
    let out = run_topology(scale);
    let rows: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|r| {
            vec![
                r.replicas.to_string(),
                r.quorum.to_string(),
                format!("{:?}", r.fanout).to_lowercase(),
                r.commits.to_string(),
                num(r.mean_commit_latency_ms, 3),
                num(r.worst_staleness_ms, 1),
                format!(
                    "r{} ({})",
                    r.stalest_replica,
                    num(r.stalest_staleness_ms, 1)
                ),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(
            &[
                "N",
                "Quorum",
                "Fanout",
                "Commits",
                "Commit lat (ms)",
                "Staleness (ms)",
                "Stalest replica (ms)"
            ],
            &rows
        )
    );
    outln!(
        "  bit-compat (N=1, q=1, star vs default config): fingerprints 0x{:016x} / 0x{:016x} -> {}",
        out.baseline_fingerprint,
        out.degenerate_fingerprint,
        if out.bit_compatible {
            "IDENTICAL"
        } else {
            "DRIFTED"
        },
    );
    outln!(
        "  same-seed rerun (N=3, q=2, star) fingerprint 0x{:016x}: {}\n",
        out.rerun_fingerprint,
        if out.deterministic {
            "byte-identical replay"
        } else {
            "MISMATCH"
        },
    );
    write_artifact("BENCH_topology.json", &out.json);
}

fn health(scale: Scale) {
    outln!("Health — per-replica health states, virtual-time series, deterministic alerts");
    let out = run_health(scale);
    outln!(
        "  quiet run (N={}, q={}): {} commits, {} alerts, final states [{}]",
        3,
        2,
        out.quiet.commits,
        out.quiet.alerts_fired,
        out.quiet.final_states,
    );
    outln!(
        "  partition run (replica 2 down, epochs 4..=9): {} fired / {} resolved, \
         {} transitions, final states [{}]",
        out.stale.alerts_fired,
        out.stale.alerts_resolved,
        out.stale.transitions,
        out.stale.final_states,
    );
    outln!("  alert arc: {}", out.stale.alert_sequence);
    outln!("  health arc: {}", out.stale.transition_sequence);
    outln!(
        "  same-seed rerun fingerprint 0x{:016x}: {}\n",
        out.rerun_fingerprint,
        if out.deterministic {
            "byte-identical alert log, series and fingerprint"
        } else {
            "MISMATCH"
        },
    );
    write_artifact("BENCH_health.json", &out.json);
    write_artifact("health_alerts.jsonl", &out.alert_log_jsonl);
    write_artifact("health_series.jsonl", &out.series_jsonl);
}

fn postmortem(scale: Scale) {
    outln!("Postmortem — incident capture, bundle replay, differential forensics");
    let out = run_postmortem(scale);
    outln!(
        "  capture: trigger '{}' froze the bundle at epoch {} ({} bytes, hash 0x{:08x})",
        out.trigger,
        out.trigger_epoch,
        out.bundle_bytes,
        out.bundle_hash,
    );
    outln!("    {}", out.trigger_detail);
    outln!(
        "  integrity: round-trip {}; rejects version bump {}, truncation {}, tampering {}",
        out.decode_round_trip,
        out.rejects_unknown_version,
        out.rejects_truncation,
        out.rejects_tampering,
    );
    outln!(
        "  replay fingerprint 0x{:016x}: {}",
        out.replay_fingerprint,
        if out.replay_verified {
            "byte-identical fingerprint, alert log and unresolved alerts"
        } else {
            "MISMATCH"
        },
    );
    let p = &out.postmortem;
    outln!(
        "  forensics vs fault-stripped baseline: {} vs {} checkpoints, \
         dominant stage {} vs {}, throughput delta {}%",
        p.incident_checkpoints,
        p.baseline_checkpoints,
        p.dominant_stage_incident,
        p.dominant_stage_baseline,
        num(p.throughput_delta_pct, 1),
    );
    outln!("  alert timeline: {}\n", p.alert_timeline.join("|"));
    write_artifact("BENCH_postmortem.json", &out.json);
    write_artifact("incident.bundle", &out.bundle_text);
    write_artifact("postmortem.json", &out.postmortem_json);
    write_artifact("postmortem_report.txt", &out.postmortem_text);
}

fn wire(scale: Scale) {
    outln!("Wire — v3 epoch-delta columnar format vs the v2 stream");
    let out = run_wire(scale);
    let rows: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                format!("v{}", r.version),
                r.checkpoints.to_string(),
                r.commits.to_string(),
                num(r.bytes_per_epoch / 1024.0, 1),
                num(r.mean_transfer_ms, 3),
            ]
        })
        .collect();
    outln!(
        "{}",
        render(
            &[
                "Workload",
                "Wire",
                "Epochs",
                "Commits",
                "KiB/epoch",
                "Transfer (ms)"
            ],
            &rows
        )
    );
    for red in &out.reductions {
        outln!(
            "  {}: v3 ships {}x fewer bytes per epoch, transfer {}x shorter",
            red.workload,
            num(red.bytes_ratio, 2),
            num(red.transfer_ratio, 2),
        );
    }
    outln!("  negotiation (N=3, q=2):");
    for n in &out.negotiation {
        outln!(
            "    offer v{} caps [{}] over {}: negotiated [{}], {} commits",
            n.offer,
            n.caps,
            n.fanout,
            n.negotiated,
            n.commits,
        );
    }
    outln!(
        "  bit-compat (v3 offer, v2-capped replica vs default): fingerprints 0x{:016x} / 0x{:016x} -> {}",
        out.baseline_fingerprint,
        out.capped_fingerprint,
        if out.bit_compatible {
            "IDENTICAL"
        } else {
            "DRIFTED"
        },
    );
    outln!(
        "  same-seed v3 rerun fingerprint 0x{:016x}: {}\n",
        out.rerun_fingerprint,
        if out.deterministic {
            "byte-identical replay"
        } else {
            "MISMATCH"
        },
    );
    write_artifact("BENCH_wire.json", &out.json);
}

/// `repro replay <bundle>` — re-executes a captured incident bundle and
/// verifies it reproduces the bundled run byte for byte.
fn replay_bundle(path: Option<&str>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("usage: repro replay <bundle>");
        return ExitCode::FAILURE;
    };
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("could not read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bundle = match here_core::IncidentBundle::decode(&doc) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("could not decode {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying {path}: trigger '{}' at epoch {} — {}",
        bundle.incident.trigger, bundle.incident.epoch, bundle.incident.detail
    );
    let outcome = match bundle.replay() {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("  bundled  fingerprint 0x{:016x}", bundle.fingerprint);
    println!(
        "  replayed fingerprint 0x{:016x} ({})",
        outcome.fingerprint,
        if outcome.fingerprint_matches {
            "match"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "  alert log: {}",
        if outcome.alert_log_matches {
            "byte-identical"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "  unresolved alerts: {}",
        if outcome.active_alerts_match {
            "match"
        } else {
            "MISMATCH"
        }
    );
    if outcome.verified() {
        println!("replay verified: the bundle reproduces the incident byte for byte");
        ExitCode::SUCCESS
    } else {
        eprintln!("replay FAILED to reproduce the bundled run");
        ExitCode::FAILURE
    }
}

fn overhead(scale: Scale) {
    outln!("Section 8.7 — replication engine overhead (paper: 62% CPU, 314 MB)");
    let out = run_overhead(scale);
    let rows = vec![
        vec!["CPU (% of one core)".into(), num(out.cpu_core_pct, 1)],
        vec!["RSS (MiB)".into(), num(out.rss_mib, 1)],
        vec!["checkpoints in window".into(), out.checkpoints.to_string()],
    ];
    outln!("{}", render(&["Metric", "Value"], &rows));
}

#[cfg(test)]
mod tests {
    use super::{ALL, CATALOG};

    #[test]
    fn catalog_stays_parallel_to_the_experiment_list() {
        let names: Vec<&str> = CATALOG.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, ALL, "--list catalog out of sync with ALL");
        for (name, description, artifacts) in CATALOG {
            assert!(!description.is_empty(), "{name} needs a description");
            assert!(!artifacts.is_empty(), "{name} needs an artifacts cell");
        }
    }
}
