//! `gate` — the bench-trajectory regression gate.
//!
//! Compares a freshly produced `BENCH_*.json` against a committed
//! baseline with per-key tolerances (see [`here_bench::gate`]) and exits
//! non-zero on regression, so CI fails when a change moves a
//! deterministic result or blows the wall-clock envelope.
//!
//! ```text
//! gate <baseline.json> <fresh.json> [--tol <rel>] [--overhead-tol <pts>]
//! ```

use here_bench::gate::{gate_files, Tolerances};

fn usage() -> ! {
    eprintln!(
        "usage: gate <baseline.json> <fresh.json> [--tol <relative, e.g. 3.0>] \
         [--overhead-tol <percentage points>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tol = Tolerances::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tol" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                tol.measured_rel = v;
            }
            "--overhead-tol" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                tol.overhead_abs = v;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}");
                usage();
            }
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    let [baseline, fresh] = paths.as_slice() else {
        usage()
    };
    match gate_files(baseline, fresh, &tol) {
        Ok(report) => print!("{report}"),
        Err(report) => {
            print!("{report}");
            std::process::exit(1);
        }
    }
}
