//! `gate` — the bench-trajectory regression gate.
//!
//! Compares a freshly produced `BENCH_*.json` against a committed
//! baseline with per-key tolerances (see [`here_bench::gate`]) and exits
//! non-zero on regression, so CI fails when a change moves a
//! deterministic result or blows the wall-clock envelope.
//!
//! ```text
//! gate <baseline.json> <fresh.json> [--tol <rel>] [--overhead-tol <pts>]
//! gate --efficiency <fresh.json> --lanes <n> --min-efficiency <x>
//! ```
//!
//! The `--efficiency` mode gates *measured* parallel efficiency from a
//! fresh `BENCH_datapath.json` (no baseline involved): the `workers == n`
//! row must report `measured_parallelism >= n * x`. Hosts with fewer CPUs
//! than lanes print a skip notice and exit 0 — wall-clock speedup is not
//! measurable there.

use here_bench::gate::{efficiency_gate_file, gate_files, Tolerances};

fn usage() -> ! {
    eprintln!(
        "usage: gate <baseline.json> <fresh.json> [--tol <relative, e.g. 3.0>] \
         [--overhead-tol <percentage points>]\n       \
         gate --efficiency <fresh.json> --lanes <n> --min-efficiency <x, e.g. 0.6>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tol = Tolerances::default();
    let mut efficiency = false;
    let mut lanes: u64 = 4;
    let mut min_efficiency: f64 = 0.6;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--efficiency" => efficiency = true,
            "--lanes" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                lanes = v;
            }
            "--min-efficiency" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                min_efficiency = v;
            }
            "--tol" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                tol.measured_rel = v;
            }
            "--overhead-tol" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                tol.overhead_abs = v;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}");
                usage();
            }
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    if efficiency {
        let [fresh] = paths.as_slice() else { usage() };
        match efficiency_gate_file(fresh, lanes, min_efficiency) {
            Ok(report) => print!("{report}"),
            Err(report) => {
                print!("{report}");
                std::process::exit(1);
            }
        }
        return;
    }
    let [baseline, fresh] = paths.as_slice() else {
        usage()
    };
    match gate_files(baseline, fresh, &tol) {
        Ok(report) => print!("{report}"),
        Err(report) => {
            print!("{report}");
            std::process::exit(1);
        }
    }
}
