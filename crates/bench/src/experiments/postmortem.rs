//! The postmortem-plane experiment (`repro postmortem`).
//!
//! Pins the whole capture → replay → forensics arc on one induced
//! incident, all in simulated time so the gate compares every number
//! exactly:
//!
//! 1. **Capture.** The health experiment's sustained partition of
//!    replica 2 re-runs with [`postmortem capture`] armed; the first
//!    `quorum_at_risk`/`stale_replica` page freezes an
//!    [`IncidentBundle`] — config, seeds, fault plan, ledger, flight
//!    recorder, spans, health tails — behind a checksummed, versioned
//!    header.
//! 2. **Integrity.** The encoded bundle must round-trip through
//!    [`IncidentBundle::decode`] unchanged, and strict decoding must
//!    reject a version bump, a truncation and a same-length bit flip.
//! 3. **Replay.** Re-executing the decoded bundle must reproduce the
//!    captured run's [`RunReport::fingerprint`], alert log and
//!    unresolved alerts byte for byte — the bundle is a one-file repro.
//! 4. **Forensics.** [`PostmortemAnalyzer`] re-runs the same seed with
//!    the fault plan stripped and diffs incident vs. healthy baseline:
//!    per-stage time deltas, critical-path shift, per-replica ack/retry
//!    divergence and the reconstructed alert timeline
//!    (`postmortem.json` + human-readable report).
//!
//! [`postmortem capture`]: here_core::ReplicationConfig::postmortem_capture
//! [`RunReport::fingerprint`]: here_core::RunReport::fingerprint

use here_core::{
    FanoutMode, FaultPlan, IncidentBundle, PostmortemAnalyzer, PostmortemReport, ReplicationConfig,
    ScenarioSpec, TopologyConfig, WorkloadSpec,
};
use here_sim_core::time::SimDuration;
use here_vmstate::wire::fnv32;

use super::health::{
    PARTITIONED_REPLICA, PARTITION_ATTEMPTS_DOWN, PARTITION_FIRST, PARTITION_LAST, PLAN_SEED,
    QUORUM, REPLICAS, RUN_SEED, STALE_EPOCH_LAG,
};
use super::Scale;

/// Everything `repro postmortem` reports.
#[derive(Debug, Clone)]
pub struct PostmortemOutput {
    /// Seed of the fault plan ([`PLAN_SEED`]).
    pub plan_seed: u64,
    /// Seed of the scenario run ([`RUN_SEED`]).
    pub run_seed: u64,
    /// What tripped capture (must be `alert`).
    pub trigger: String,
    /// Epoch the trigger fired in.
    pub trigger_epoch: u64,
    /// Trigger detail line from the capture.
    pub trigger_detail: String,
    /// Fingerprint of the captured incident run.
    pub incident_fingerprint: u64,
    /// Size of the encoded bundle in bytes.
    pub bundle_bytes: usize,
    /// FNV-32 of the encoded bundle text.
    pub bundle_hash: u32,
    /// True when decode(encode(bundle)) equals the bundle field-for-field.
    pub decode_round_trip: bool,
    /// True when a version bump was rejected as `unknown bundle version`.
    pub rejects_unknown_version: bool,
    /// True when a cut-off tail was rejected as `truncated bundle`.
    pub rejects_truncation: bool,
    /// True when a same-length bit flip was rejected as `tampered bundle`.
    pub rejects_tampering: bool,
    /// Fingerprint of the replayed run.
    pub replay_fingerprint: u64,
    /// True when the replay reproduced fingerprint, alert log and
    /// unresolved alerts byte for byte.
    pub replay_verified: bool,
    /// The differential forensics diff (incident vs. fault-stripped
    /// baseline).
    pub postmortem: PostmortemReport,
    /// Alerts that fired in the incident run's timeline.
    pub alerts_fired: usize,
    /// The encoded bundle (`incident.bundle`).
    pub bundle_text: String,
    /// The forensics diff as JSON (`postmortem.json`).
    pub postmortem_json: String,
    /// The forensics diff as a human-readable report
    /// (`postmortem_report.txt`).
    pub postmortem_text: String,
    /// The whole report as a JSON document (`BENCH_postmortem.json`).
    pub json: String,
}

fn scale_params(scale: Scale) -> (u64, u64) {
    // (VM memory MiB, scenario seconds) — the health experiment's sizing,
    // so the incident arc is the one `repro health` already pins.
    match scale {
        Scale::Paper => (128, 60),
        Scale::Quick => (64, 30),
    }
}

/// The incident's schedule: replica 2's link stays down past the retry
/// budget for every epoch of the span (the health experiment's plan).
fn partition_plan() -> FaultPlan {
    FaultPlan::new(PLAN_SEED).with_partition_span(
        PARTITION_FIRST..=PARTITION_LAST,
        &[PARTITIONED_REPLICA],
        PARTITION_ATTEMPTS_DOWN,
    )
}

fn config() -> ReplicationConfig {
    ReplicationConfig::fixed_period(SimDuration::from_secs(2))
        .with_topology(TopologyConfig {
            replicas: REPLICAS,
            quorum: QUORUM,
            fanout: FanoutMode::Star,
            stale_epoch_lag: STALE_EPOCH_LAG,
        })
        .with_health_plane()
        .with_postmortem_capture()
}

fn spec(scale: Scale) -> ScenarioSpec {
    let (mem_mib, secs) = scale_params(scale);
    ScenarioSpec {
        name: "postmortem-incident".to_string(),
        memory_mib: mem_mib,
        vcpus: 4,
        workload: WorkloadSpec::MemStress {
            percent: 30,
            rate: 20_000,
        },
        duration: SimDuration::from_secs(secs),
        seed: RUN_SEED,
        verify_consistency: false,
    }
}

/// Captures an incident bundle from the induced partition, proves its
/// integrity envelope, replays it and diffs it against the healthy
/// baseline.
pub fn run_postmortem(scale: Scale) -> PostmortemOutput {
    // 1. Capture: run the armed partition scenario and freeze the bundle.
    let spec = spec(scale);
    let config = config();
    let plan = partition_plan();
    let report = spec
        .build_scenario(config.clone(), Some(plan.clone()))
        .expect("postmortem scenario is valid")
        .run();
    let bundle = IncidentBundle::capture(spec, &config, Some(&plan), &report)
        .expect("the armed partition run captures an incident");
    let encoded = bundle.encode();

    // 2. Integrity: round-trip, then three deliberate corruptions.
    let decoded = IncidentBundle::decode(&encoded).expect("the encoded bundle decodes");
    let decode_round_trip = decoded == bundle;
    let reject_kind = |doc: &str| match IncidentBundle::decode(doc) {
        Ok(_) => String::new(),
        Err(e) => e.to_string(),
    };
    let rejects_unknown_version =
        reject_kind(&encoded.replacen(" v1\n", " v2\n", 1)).contains("unknown bundle version");
    let rejects_truncation =
        reject_kind(&encoded[..encoded.len() - 10]).contains("truncated bundle");
    let rejects_tampering =
        reject_kind(&encoded.replacen("seed=42", "seed=43", 1)).contains("tampered bundle");

    // 3. Replay: the decoded bundle reproduces the captured run.
    let replay = decoded.replay().expect("the decoded bundle replays");

    // 4. Forensics: diff the incident against the fault-stripped
    //    baseline.
    let postmortem = PostmortemAnalyzer::diff(&bundle).expect("the bundle diffs");
    let alerts_fired = postmortem
        .alert_timeline
        .iter()
        .filter(|a| a.contains(":firing@"))
        .count();

    let mut out = PostmortemOutput {
        plan_seed: PLAN_SEED,
        run_seed: RUN_SEED,
        trigger: bundle.incident.trigger.clone(),
        trigger_epoch: bundle.incident.epoch,
        trigger_detail: bundle.incident.detail.clone(),
        incident_fingerprint: bundle.fingerprint,
        bundle_bytes: encoded.len(),
        bundle_hash: fnv32(encoded.as_bytes()),
        decode_round_trip,
        rejects_unknown_version,
        rejects_truncation,
        rejects_tampering,
        replay_fingerprint: replay.fingerprint,
        replay_verified: replay.verified(),
        postmortem_json: postmortem.render_json(),
        postmortem_text: postmortem.render_text(),
        postmortem,
        alerts_fired,
        bundle_text: encoded,
        json: String::new(),
    };
    out.json = render_json(&out);
    out
}

fn render_json(o: &PostmortemOutput) -> String {
    let p = &o.postmortem;
    let divergence = p
        .replicas
        .iter()
        .map(|r| {
            format!(
                "r{}:acks{}/{}:lag{}/{}:retries{}/{}",
                r.replica,
                r.incident_acks,
                r.baseline_acks,
                r.incident_lag,
                r.baseline_lag,
                r.incident_retries,
                r.baseline_retries
            )
        })
        .collect::<Vec<_>>()
        .join("|");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"postmortem\",\n");
    out.push_str(&format!("  \"plan_seed\": {},\n", o.plan_seed));
    out.push_str(&format!("  \"run_seed\": {},\n", o.run_seed));
    out.push_str(&format!("  \"replicas\": {REPLICAS},\n"));
    out.push_str(&format!("  \"quorum\": {QUORUM},\n"));
    out.push_str("  \"capture\": {\n");
    out.push_str(&format!("    \"trigger\": \"{}\",\n", o.trigger));
    out.push_str(&format!("    \"trigger_epoch\": {},\n", o.trigger_epoch));
    out.push_str(&format!(
        "    \"fingerprint\": \"0x{:016x}\",\n",
        o.incident_fingerprint
    ));
    out.push_str(&format!("    \"bundle_bytes\": {},\n", o.bundle_bytes));
    out.push_str(&format!(
        "    \"bundle_hash\": \"0x{:08x}\"\n",
        o.bundle_hash
    ));
    out.push_str("  },\n");
    out.push_str("  \"integrity\": {\n");
    out.push_str(&format!(
        "    \"decode_round_trip\": {},\n",
        o.decode_round_trip
    ));
    out.push_str(&format!(
        "    \"rejects_unknown_version\": {},\n",
        o.rejects_unknown_version
    ));
    out.push_str(&format!(
        "    \"rejects_truncation\": {},\n",
        o.rejects_truncation
    ));
    out.push_str(&format!(
        "    \"rejects_tampering\": {}\n",
        o.rejects_tampering
    ));
    out.push_str("  },\n");
    out.push_str("  \"replay\": {\n");
    out.push_str(&format!(
        "    \"fingerprint\": \"0x{:016x}\",\n",
        o.replay_fingerprint
    ));
    out.push_str(&format!("    \"verified\": {}\n", o.replay_verified));
    out.push_str("  },\n");
    out.push_str("  \"forensics\": {\n");
    out.push_str(&format!(
        "    \"baseline_fingerprint\": \"0x{:016x}\",\n",
        p.baseline_fingerprint
    ));
    out.push_str(&format!(
        "    \"fingerprint_reproduced\": {},\n",
        p.fingerprint_reproduced
    ));
    out.push_str(&format!(
        "    \"dominant_stage_incident\": \"{}\",\n",
        p.dominant_stage_incident
    ));
    out.push_str(&format!(
        "    \"dominant_stage_baseline\": \"{}\",\n",
        p.dominant_stage_baseline
    ));
    out.push_str(&format!(
        "    \"critical_path_shifted\": {},\n",
        p.critical_path_shifted
    ));
    out.push_str(&format!("    \"divergence\": \"{divergence}\",\n"));
    out.push_str(&format!(
        "    \"incident_checkpoints\": {},\n",
        p.incident_checkpoints
    ));
    out.push_str(&format!(
        "    \"baseline_checkpoints\": {},\n",
        p.baseline_checkpoints
    ));
    out.push_str(&format!("    \"aborted_epochs\": {},\n", p.aborted_epochs));
    out.push_str(&format!(
        "    \"throughput_delta_pct\": {:.3},\n",
        p.throughput_delta_pct
    ));
    out.push_str(&format!("    \"alerts_fired\": {},\n", o.alerts_fired));
    out.push_str(&format!(
        "    \"alert_timeline\": \"{}\",\n",
        p.alert_timeline.join("|")
    ));
    out.push_str(&format!(
        "    \"baseline_alerts\": {}\n",
        p.baseline_alerts.len()
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_replay_and_forensics_pin_the_whole_arc() {
        let out = run_postmortem(Scale::Quick);

        // Capture: the partition's first page froze the bundle.
        assert_eq!(out.trigger, "alert", "{}", out.trigger_detail);
        assert!(out.bundle_bytes > 0);
        assert_eq!(fnv32(out.bundle_text.as_bytes()), out.bundle_hash);

        // Integrity: round-trip holds, every corruption is rejected.
        assert!(out.decode_round_trip);
        assert!(out.rejects_unknown_version);
        assert!(out.rejects_truncation);
        assert!(out.rejects_tampering);

        // Replay: byte-identical reproduction.
        assert!(out.replay_verified);
        assert_eq!(out.replay_fingerprint, out.incident_fingerprint);

        // Forensics: the diff attributes the fault to the partitioned
        // replica and the baseline stays quiet.
        let p = &out.postmortem;
        assert!(p.fingerprint_reproduced);
        assert_ne!(p.incident_fingerprint, p.baseline_fingerprint);
        let r2 = &p.replicas[PARTITIONED_REPLICA as usize];
        assert!(
            r2.incident_retries > r2.baseline_retries,
            "incident {} vs baseline {} retries",
            r2.incident_retries,
            r2.baseline_retries
        );
        assert!(r2.incident_acks < r2.baseline_acks);
        assert!(out.alerts_fired >= 2, "{}", p.alert_timeline.join("|"));
        assert!(p.baseline_alerts.is_empty());

        // The artifacts carry the same content the summary hashed, and
        // the gate document carries only deterministic keys.
        assert!(out.bundle_text.starts_with("HEREBUNDLE v1\n"));
        assert!(out.postmortem_json.contains("\"trigger\": \"alert\""));
        assert!(out.postmortem_text.contains("POSTMORTEM"));
        assert!(out.json.contains("\"replay\""));
        assert!(!out.json.contains("wall"));
    }
}
