//! Per-stage breakdown of the checkpoint pipeline, derived from the
//! structured [`StageEvent`](here_core::StageEvent) trace the engine
//! emits — the instrumented view of the paper's pause model
//! `t = αN/P + C` (Eq. 4): harvest carries the `αN/P` term, translate the
//! constant `C`, transfer the wire term.

use here_core::{ReplicationConfig, Scenario, Stage, Strategy};
use here_sim_core::time::SimDuration;
use here_workloads::memstress::MemStress;

use super::Scale;

/// One pipeline stage's aggregate over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRow {
    /// The stage.
    pub stage: Stage,
    /// Total virtual time spent in the stage across the run.
    pub total_secs: f64,
    /// Share of the summed pipeline time, percent.
    pub share_pct: f64,
    /// Mean time per checkpoint, milliseconds.
    pub mean_ms: f64,
}

/// Stage breakdown of one strategy's run.
#[derive(Debug, Clone, PartialEq)]
pub struct StagesResult {
    /// Which replication strategy ran.
    pub strategy: Strategy,
    /// Checkpoints observed (distinct sequence numbers in the trace).
    pub checkpoints: u64,
    /// One row per stage, in pipeline order.
    pub rows: Vec<StageRow>,
    /// Whether every checkpoint emitted the complete six-stage sequence
    /// in pipeline order — the trace-integrity invariant the report
    /// derivation relies on.
    pub complete: bool,
}

/// Runs a 30 %-loaded VM under `strategy` and folds the emitted stage
/// events into per-stage totals.
pub fn run_stages(scale: Scale, strategy: Strategy) -> StagesResult {
    let (gib, secs) = match scale {
        Scale::Paper => (16, 60),
        Scale::Quick => (1, 30),
    };
    let period = SimDuration::from_secs(4);
    let config = match strategy {
        Strategy::Remus => ReplicationConfig::remus(period),
        Strategy::Here => ReplicationConfig::fixed_period(period),
    };
    let report = Scenario::builder()
        .name(format!("stages-{strategy:?}"))
        .vm_memory_gib(gib)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30)))
        .config(config)
        .duration(SimDuration::from_secs(secs))
        .build()
        .expect("valid scenario")
        .run();

    let mut seqs: Vec<u64> = report.stage_events.iter().map(|e| e.seq).collect();
    seqs.dedup();
    let checkpoints = seqs.len() as u64;
    let complete = !seqs.is_empty()
        && seqs.iter().all(|&seq| {
            let stages: Vec<Stage> = report
                .stage_events
                .iter()
                .filter(|e| e.seq == seq)
                .map(|e| e.stage)
                .collect();
            stages == Stage::ALL
        });

    let totals = report.stage_breakdown();
    let sum: f64 = totals.iter().map(|&(_, d)| d.as_secs_f64()).sum();
    let rows = totals
        .into_iter()
        .map(|(stage, total)| {
            let total_secs = total.as_secs_f64();
            StageRow {
                stage,
                total_secs,
                share_pct: if sum > 0.0 {
                    total_secs / sum * 100.0
                } else {
                    0.0
                },
                mean_ms: if checkpoints > 0 {
                    total_secs * 1e3 / checkpoints as f64
                } else {
                    0.0
                },
            }
        })
        .collect();

    StagesResult {
        strategy,
        checkpoints,
        rows,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_checkpoint_traces_a_complete_pipeline() {
        for strategy in [Strategy::Remus, Strategy::Here] {
            let out = run_stages(Scale::Quick, strategy);
            assert!(out.checkpoints > 0);
            assert!(out.complete, "{strategy:?} trace incomplete");
            assert_eq!(out.rows.len(), 6);
        }
    }

    #[test]
    fn harvest_dominates_and_here_shrinks_it() {
        let remus = run_stages(Scale::Quick, Strategy::Remus);
        let here = run_stages(Scale::Quick, Strategy::Here);
        let harvest = |r: &StagesResult| {
            r.rows
                .iter()
                .find(|row| row.stage == Stage::Harvest)
                .expect("harvest row")
                .mean_ms
        };
        // Under memory load the αN/P term dominates the pipeline, and
        // HERE's multithreaded harvest (P > 1) shrinks it.
        assert!(harvest(&remus) > harvest(&here));
        let dominant = remus
            .rows
            .iter()
            .max_by(|a, b| a.total_secs.total_cmp(&b.total_secs))
            .unwrap();
        assert_eq!(dominant.stage, Stage::Harvest);
    }

    #[test]
    fn shares_sum_to_one_hundred_percent() {
        let out = run_stages(Scale::Quick, Strategy::Here);
        let total: f64 = out.rows.iter().map(|r| r.share_pct).sum();
        assert!((total - 100.0).abs() < 1e-6, "shares sum to {total}");
    }
}
