//! Security experiments: Tables 1, 2, 5 and the heterogeneity demo (§8.2).

use here_core::{FailureCause, FailurePlan, ReplicationConfig, Scenario};
use here_hypervisor::fault::DosOutcome;
use here_sim_core::time::{SimDuration, SimTime};
use here_vulndb::analysis::{shared_vulnerabilities, table1, table5, Table1Row, Table5Row};
use here_vulndb::dataset::nvd_corpus;
use here_vulndb::exploit::{sample_dos_exploit, DosSource, Exploit, ALL_SOURCES};
use here_vulndb::record::{Deployment, Privilege, Product, Target};

/// Regenerates Table 1 from the embedded corpus.
pub fn run_table1() -> Vec<Table1Row> {
    table1(&nvd_corpus())
}

/// Regenerates Table 5 from the embedded corpus.
pub fn run_table5() -> Vec<Table5Row> {
    table5(&nvd_corpus())
}

/// One row of Table 2 as validated against the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// DoS source.
    pub source: DosSource,
    /// Guest-failure coverage (taxonomy: the guest's own user/kernel
    /// crashing the guest is replicated faithfully and cannot be covered).
    pub guest_covered: bool,
    /// Host-failure coverage, *validated by running a failover scenario*.
    pub host_covered: bool,
}

/// Regenerates Table 2, validating every host-failure cell by actually
/// injecting a failure from that source and checking that the replica took
/// over.
pub fn run_table2() -> Vec<Table2Row> {
    let corpus = nvd_corpus();
    ALL_SOURCES
        .iter()
        .map(|&source| {
            let cause = match source {
                DosSource::Accident => FailureCause::Accident(DosOutcome::Crash),
                DosSource::GuestUser => {
                    FailureCause::Exploit(exploit_with_privilege(&corpus, Privilege::GuestUser))
                }
                DosSource::GuestKernel => {
                    FailureCause::Exploit(exploit_with_privilege(&corpus, Privilege::GuestKernel))
                }
                // Another guest or an external service exploits the same
                // host-level vulnerability class.
                DosSource::OtherGuest | DosSource::OtherService => FailureCause::Exploit(
                    sample_dos_exploit(&corpus, Product::Xen)
                        .expect("corpus contains Xen host DoS CVEs"),
                ),
            };
            let report = Scenario::builder()
                .name(format!("tab2-{source:?}"))
                .vm_memory_mib(128)
                .vcpus(2)
                .config(ReplicationConfig::fixed_period(SimDuration::from_secs(2)))
                .duration(SimDuration::from_secs(20))
                .failure(FailurePlan {
                    at: SimTime::from_secs(8),
                    cause,
                    reattack_secondary: false,
                })
                .build()
                .expect("valid scenario")
                .run();
            let host_covered = report
                .failover
                .map(|f| f.resumed_at > f.failed_at)
                .unwrap_or(false);
            Table2Row {
                source,
                guest_covered: source.guest_failure_covered(),
                host_covered,
            }
        })
        .collect()
}

fn exploit_with_privilege(
    corpus: &[here_vulndb::record::CveRecord],
    privilege: Privilege,
) -> Exploit {
    corpus
        .iter()
        .find(|r| {
            r.product == Product::Xen
                && r.is_dos_only()
                && r.target == Target::HypervisorCore
                && r.privilege == privilege
        })
        .cloned()
        .map(Exploit::new)
        .expect("corpus contains Xen host DoS CVEs at both privilege levels")
}

/// Result of the heterogeneity demonstration: the same zero-day launched
/// at the primary, then re-launched at the secondary after failover.
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneityDemo {
    /// The CVE used.
    pub cve_id: String,
    /// Whether the exploit downed the HERE primary (it must — it is a Xen
    /// bug and the primary runs Xen).
    pub here_primary_down: bool,
    /// Whether HERE's KVM replica survived the re-attack and kept serving.
    pub here_service_survived: bool,
    /// Client-visible outage of the HERE failover, in milliseconds.
    pub here_outage_ms: f64,
    /// Whether homogeneous (Remus-style) replication survived the same
    /// re-attack (it must not: the secondary shares the vulnerability).
    pub homogeneous_service_survived: bool,
    /// Number of CVEs the HERE deployment pair shares (must be 0).
    pub shared_cves_here_pair: usize,
    /// Number of CVEs a Xen+QEMU / QEMU-KVM pair would share.
    pub shared_cves_qemu_pair: usize,
}

/// Runs the paper's core security claim end to end.
pub fn run_heterogeneity_demo() -> HeterogeneityDemo {
    let corpus = nvd_corpus();
    let exploit = sample_dos_exploit(&corpus, Product::Xen).expect("xen DoS exists");
    let cve_id = exploit.cve().id.clone();
    let plan = |reattack| FailurePlan {
        at: SimTime::from_secs(10),
        cause: FailureCause::Exploit(exploit.clone()),
        reattack_secondary: reattack,
    };
    let build = |cfg: ReplicationConfig, reattack: bool| {
        Scenario::builder()
            .name("heterogeneity-demo")
            .vm_memory_mib(256)
            .vcpus(2)
            .config(cfg)
            .duration(SimDuration::from_secs(40))
            .failure(plan(reattack))
            .build()
            .expect("valid scenario")
            .run()
    };

    let here = build(
        ReplicationConfig::fixed_period(SimDuration::from_secs(2)),
        true,
    );
    let remus = build(ReplicationConfig::remus(SimDuration::from_secs(2)), true);

    let here_fo = here.failover.clone();
    let here_outage_ms = here_fo
        .as_ref()
        .map(|f| f.outage().as_secs_f64() * 1e3)
        .unwrap_or(f64::NAN);
    // Service survived if the run kept completing work after the failover.
    let here_service_survived = here_fo.is_some() && here.elapsed > SimDuration::from_secs(30);
    let homogeneous_service_survived =
        remus.failover.is_some() && remus.elapsed > SimDuration::from_secs(30);

    HeterogeneityDemo {
        cve_id,
        here_primary_down: here_fo.is_some(),
        here_service_survived,
        here_outage_ms,
        homogeneous_service_survived,
        shared_cves_here_pair: shared_vulnerabilities(
            &corpus,
            Deployment::XenPv,
            Deployment::KvmKvmtool,
        )
        .len(),
        shared_cves_qemu_pair: shared_vulnerabilities(
            &corpus,
            Deployment::XenQemu,
            Deployment::QemuKvm,
        )
        .len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let rows = run_table2();
        let expect = [
            (DosSource::Accident, true, true),
            (DosSource::GuestUser, false, true),
            (DosSource::GuestKernel, false, true),
            (DosSource::OtherGuest, true, true),
            (DosSource::OtherService, true, true),
        ];
        for (row, (source, guest, host)) in rows.iter().zip(expect) {
            assert_eq!(row.source, source);
            assert_eq!(row.guest_covered, guest, "{source:?} guest");
            assert_eq!(row.host_covered, host, "{source:?} host");
        }
    }

    #[test]
    fn heterogeneity_demo_shows_the_asymmetry() {
        let demo = run_heterogeneity_demo();
        assert!(demo.here_primary_down);
        assert!(
            demo.here_service_survived,
            "HERE must survive the re-attack"
        );
        assert!(
            !demo.homogeneous_service_survived,
            "homogeneous replication must fall to the same exploit"
        );
        assert_eq!(demo.shared_cves_here_pair, 0);
        assert!(demo.shared_cves_qemu_pair > 300);
        assert!(
            demo.here_outage_ms < 200.0,
            "outage {}",
            demo.here_outage_ms
        );
    }
}
