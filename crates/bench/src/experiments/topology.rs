//! The replication-topology experiment (`repro topology`).
//!
//! Sweeps the replica-set shape of the protection loop — N ∈ {1, 2, 3, 5}
//! heterogeneous replicas, quorum ∈ {1, majority, all} and both fan-out
//! modes (star and chained replication) — and reports, per configuration,
//! the commit latency the quorum rule buys (mean Ack stage duration), the
//! worst commit-to-commit staleness, the stalest replica's per-replica
//! staleness window and the run fingerprint. Everything is simulated time
//! under one seed, so the gate compares every number exactly.
//!
//! Two invariant blocks ride along:
//!
//! 1. **Bit compatibility.** The degenerate topology (N = 1, quorum = 1,
//!    star) must reproduce a run under the default configuration — the
//!    topology layer at N = 1 is byte-for-byte the old single-replica
//!    pipeline ([`RunReport::fingerprint`] equality).
//! 2. **Determinism.** A representative multi-replica row (N = 3,
//!    quorum = 2, star) re-runs with the same seed and must reproduce the
//!    identical fingerprint.
//!
//! [`RunReport::fingerprint`]: here_core::RunReport::fingerprint

use here_core::{FanoutMode, ReplicationConfig, RunReport, Scenario, Stage, TopologyConfig};
use here_sim_core::time::SimDuration;
use here_workloads::memstress::MemStress;

use super::Scale;

/// Seed of every scenario run in the sweep.
pub const RUN_SEED: u64 = 42;

/// Epoch lag past which a trailing replica is declared stale.
pub const STALE_EPOCH_LAG: u64 = 8;

/// One row of the topology matrix.
#[derive(Debug, Clone)]
pub struct TopologyRow {
    /// Replica count N.
    pub replicas: u32,
    /// Commit quorum size.
    pub quorum: u32,
    /// Fan-out mode the transfer used.
    pub fanout: FanoutMode,
    /// Checkpoint records the run produced.
    pub checkpoints: usize,
    /// Epochs the quorum committed.
    pub commits: usize,
    /// Mean Ack-stage duration — the time from transfer completion to the
    /// quorum-th acknowledgement — in simulated milliseconds.
    pub mean_commit_latency_ms: f64,
    /// Worst commit-to-commit staleness of the quorum view, simulated ms.
    pub worst_staleness_ms: f64,
    /// Replica with the widest per-replica ack gap.
    pub stalest_replica: u32,
    /// That replica's worst ack-to-ack staleness window, simulated ms.
    pub stalest_staleness_ms: f64,
    /// Report fingerprint of the run.
    pub fingerprint: u64,
}

/// Everything `repro topology` reports.
#[derive(Debug, Clone)]
pub struct TopologyOutput {
    /// Seed of the scenario runs ([`RUN_SEED`]).
    pub run_seed: u64,
    /// The 18-row sweep: N × quorum × fan-out.
    pub rows: Vec<TopologyRow>,
    /// Fingerprint of the run under the default configuration (no
    /// explicit topology).
    pub baseline_fingerprint: u64,
    /// Fingerprint of the explicit N = 1 / quorum = 1 / star run.
    pub degenerate_fingerprint: u64,
    /// The bit-compatibility invariant: the two fingerprints above match.
    pub bit_compatible: bool,
    /// Fingerprint of the determinism probe (N = 3, quorum = 2, star).
    pub rerun_fingerprint: u64,
    /// True when the same-seed rerun reproduced its row's fingerprint.
    pub deterministic: bool,
    /// The whole report as a JSON document (`BENCH_topology.json`).
    pub json: String,
}

fn scale_params(scale: Scale) -> (u64, u64) {
    // (VM memory MiB, scenario seconds); a 2 s fixed period throughout —
    // the same sizing the chaos experiment uses.
    match scale {
        Scale::Paper => (128, 60),
        Scale::Quick => (64, 30),
    }
}

/// The sweep's shape: for each N, the quorum sizes {1, majority, all}
/// (deduplicated), each under both fan-out modes.
fn matrix() -> Vec<(u32, u32, FanoutMode)> {
    let mut rows = Vec::new();
    for &n in &[1u32, 2, 3, 5] {
        let mut quorums = vec![1, n / 2 + 1, n];
        quorums.dedup();
        for q in quorums {
            for fanout in [FanoutMode::Star, FanoutMode::Chain] {
                rows.push((n, q, fanout));
            }
        }
    }
    rows
}

fn fanout_label(fanout: FanoutMode) -> &'static str {
    match fanout {
        FanoutMode::Star => "star",
        FanoutMode::Chain => "chain",
    }
}

fn run(scale: Scale, name: &str, topology: Option<TopologyConfig>) -> RunReport {
    let (mem_mib, secs) = scale_params(scale);
    let mut config = ReplicationConfig::fixed_period(SimDuration::from_secs(2));
    if let Some(topology) = topology {
        config = config.with_topology(topology);
    }
    Scenario::builder()
        .name(name)
        .vm_memory_mib(mem_mib)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
        .config(config)
        .duration(SimDuration::from_secs(secs))
        .seed(RUN_SEED)
        .verify_consistency()
        .build()
        .expect("topology scenario is valid")
        .run()
}

fn run_row(scale: Scale, replicas: u32, quorum: u32, fanout: FanoutMode) -> RunReport {
    run(
        scale,
        &format!("topology-n{replicas}-q{quorum}-{}", fanout_label(fanout)),
        Some(TopologyConfig {
            replicas,
            quorum,
            fanout,
            stale_epoch_lag: STALE_EPOCH_LAG,
        }),
    )
}

fn row_from_report(
    replicas: u32,
    quorum: u32,
    fanout: FanoutMode,
    report: &RunReport,
) -> TopologyRow {
    let acks: Vec<f64> = report
        .stage_events
        .iter()
        .filter(|e| e.stage == Stage::Ack)
        .map(|e| e.duration.as_secs_f64() * 1e3)
        .collect();
    let mean_commit_latency_ms = if acks.is_empty() {
        0.0
    } else {
        acks.iter().sum::<f64>() / acks.len() as f64
    };
    let worst_staleness_ms = report
        .worst_staleness()
        .map(|d| d.as_secs_f64() * 1e3)
        .unwrap_or(0.0);
    let (stalest_replica, stalest) = report.stalest_replica().expect("the run acked epochs");
    TopologyRow {
        replicas,
        quorum,
        fanout,
        checkpoints: report.checkpoints.len(),
        commits: report.commits.len(),
        mean_commit_latency_ms,
        worst_staleness_ms,
        stalest_replica,
        stalest_staleness_ms: stalest.as_secs_f64() * 1e3,
        fingerprint: report.fingerprint(),
    }
}

/// Runs the sweep, the bit-compatibility check and the determinism rerun.
pub fn run_topology(scale: Scale) -> TopologyOutput {
    // 1. The matrix: N × quorum × fan-out.
    let rows: Vec<TopologyRow> = matrix()
        .into_iter()
        .map(|(n, q, fanout)| row_from_report(n, q, fanout, &run_row(scale, n, q, fanout)))
        .collect();

    // 2. Bit compatibility: the degenerate topology equals the default
    //    configuration byte for byte (same scenario name so the reports
    //    fingerprint identically when the behaviour does).
    let baseline = run(scale, "topology-bitcompat", None);
    let degenerate = run(
        scale,
        "topology-bitcompat",
        Some(TopologyConfig {
            replicas: 1,
            quorum: 1,
            fanout: FanoutMode::Star,
            stale_epoch_lag: STALE_EPOCH_LAG,
        }),
    );
    let baseline_fingerprint = baseline.fingerprint();
    let degenerate_fingerprint = degenerate.fingerprint();
    let bit_compatible = baseline_fingerprint == degenerate_fingerprint;

    // 3. Determinism: a representative multi-replica row replays to the
    //    same fingerprint under the same seed.
    let probe = rows
        .iter()
        .find(|r| r.replicas == 3 && r.quorum == 2 && r.fanout == FanoutMode::Star)
        .expect("the matrix contains N=3 q=2 star");
    let rerun = run_row(scale, 3, 2, FanoutMode::Star);
    let rerun_fingerprint = rerun.fingerprint();
    let deterministic = rerun_fingerprint == probe.fingerprint;

    let mut out = TopologyOutput {
        run_seed: RUN_SEED,
        rows,
        baseline_fingerprint,
        degenerate_fingerprint,
        bit_compatible,
        rerun_fingerprint,
        deterministic,
        json: String::new(),
    };
    out.json = render_json(&out);
    out
}

fn render_json(o: &TopologyOutput) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"topology\",\n");
    out.push_str(&format!("  \"run_seed\": {},\n", o.run_seed));
    out.push_str(&format!("  \"stale_epoch_lag\": {STALE_EPOCH_LAG},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in o.rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"replicas\": {},\n", r.replicas));
        out.push_str(&format!("      \"quorum\": {},\n", r.quorum));
        out.push_str(&format!(
            "      \"fanout\": \"{}\",\n",
            fanout_label(r.fanout)
        ));
        out.push_str(&format!("      \"checkpoints\": {},\n", r.checkpoints));
        out.push_str(&format!("      \"commits\": {},\n", r.commits));
        out.push_str(&format!(
            "      \"mean_commit_latency_ms\": {:.3},\n",
            r.mean_commit_latency_ms
        ));
        out.push_str(&format!(
            "      \"worst_staleness_ms\": {:.3},\n",
            r.worst_staleness_ms
        ));
        out.push_str(&format!(
            "      \"stalest_replica\": {},\n",
            r.stalest_replica
        ));
        out.push_str(&format!(
            "      \"stalest_staleness_ms\": {:.3},\n",
            r.stalest_staleness_ms
        ));
        out.push_str(&format!(
            "      \"fingerprint\": \"0x{:016x}\"\n",
            r.fingerprint
        ));
        out.push_str(if i + 1 == o.rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"bit_compat\": {\n");
    out.push_str(&format!(
        "    \"baseline_fingerprint\": \"0x{:016x}\",\n",
        o.baseline_fingerprint
    ));
    out.push_str(&format!(
        "    \"degenerate_fingerprint\": \"0x{:016x}\",\n",
        o.degenerate_fingerprint
    ));
    out.push_str(&format!("    \"bit_compatible\": {}\n", o.bit_compatible));
    out.push_str("  },\n");
    out.push_str("  \"determinism\": {\n");
    out.push_str(&format!(
        "    \"fingerprint\": \"0x{:016x}\",\n",
        o.rerun_fingerprint
    ));
    out.push_str(&format!("    \"deterministic\": {}\n", o.deterministic));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_sweep_is_bit_compatible_and_deterministic() {
        let out = run_topology(Scale::Quick);
        // The full matrix: 1 + 2 + 3 + 3 quorum shapes, each × 2 fanouts.
        assert_eq!(out.rows.len(), 18);
        // The degenerate topology reproduces the default configuration.
        assert!(
            out.bit_compatible,
            "N=1/q=1/star drifted from the default path"
        );
        // Same seed, same fingerprint.
        assert!(out.deterministic);
        // Every configuration makes commit progress.
        for r in &out.rows {
            assert!(
                r.commits >= 10,
                "N={} q={} only committed {}",
                r.replicas,
                r.quorum,
                r.commits
            );
            assert_eq!(r.commits, r.checkpoints);
            assert!(r.stalest_replica < r.replicas);
        }
        // Chained fan-out pays more RTTs than star for an all-replica
        // quorum at N=5 (the ack walks the chain).
        let latency = |fanout| {
            out.rows
                .iter()
                .find(|r| r.replicas == 5 && r.quorum == 5 && r.fanout == fanout)
                .unwrap()
                .mean_commit_latency_ms
        };
        assert!(latency(FanoutMode::Chain) > latency(FanoutMode::Star));
        // The artifact carries only deterministic keys.
        assert!(out.json.contains("\"bit_compatible\": true"));
        assert!(out.json.contains("\"deterministic\": true"));
        assert!(!out.json.contains("wall"));
    }
}
