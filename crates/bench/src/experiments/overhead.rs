//! §8.7: CPU and memory overhead of the replication engine itself.

use here_core::{ReplicationConfig, Scenario};
use here_sim_core::time::SimDuration;
use here_workloads::memstress::MemStress;

use super::Scale;

/// The §8.7 measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadResult {
    /// Engine CPU use as a percentage of one core (paper: 62 %).
    pub cpu_core_pct: f64,
    /// Engine resident set in MiB (paper: 314 MB).
    pub rss_mib: f64,
    /// Checkpoints performed during the measurement window.
    pub checkpoints: usize,
}

/// Replicates a 4 vCPU VM running the microbenchmark with a fixed 1-second
/// period (the paper's §8.7 configuration: 16 GB VM).
pub fn run_overhead(scale: Scale) -> OverheadResult {
    let gib = match scale {
        Scale::Paper => 16,
        Scale::Quick => 1,
    };
    let report = Scenario::builder()
        .name("overhead")
        .vm_memory_gib(gib)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30)))
        .config(ReplicationConfig::fixed_period(SimDuration::from_secs(1)))
        .duration(SimDuration::from_secs(60))
        .build()
        .expect("valid scenario")
        .run();
    OverheadResult {
        cpu_core_pct: report.resources.cpu_core_pct,
        rss_mib: report.resources.rss.as_mib_f64(),
        checkpoints: report.checkpoints.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_a_fraction_of_one_core_with_bounded_rss() {
        let out = run_overhead(Scale::Quick);
        assert!(out.checkpoints > 10);
        assert!(
            (5.0..100.0).contains(&out.cpu_core_pct),
            "cpu {}",
            out.cpu_core_pct
        );
        assert!(
            out.rss_mib > 32.0 && out.rss_mib < 1024.0,
            "rss {}",
            out.rss_mib
        );
    }
}
