//! Experiment runners — one per table/figure of the paper's evaluation.
//!
//! Every runner comes in two scales: [`Scale::Paper`] uses the paper's VM
//! sizes, record counts and durations (what the `repro` binary runs);
//! [`Scale::Quick`] shrinks them for Criterion benches and CI.

pub mod analyze;
pub mod apps;
pub mod chaos;
pub mod checkpoint;
pub mod datapath;
pub mod dynamic;
pub mod health;
pub mod migration;
pub mod network;
pub mod observe;
pub mod overhead;
pub mod postmortem;
pub mod security;
pub mod stages;
pub mod topology;
pub mod wire;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's configuration.
    Paper,
    /// Shrunk configuration for benches and CI.
    Quick,
}

impl Scale {
    /// VM memory sizes (GiB) for the memory-size sweeps (Figs. 6–8).
    pub fn memory_sweep_gib(self) -> &'static [u64] {
        match self {
            Scale::Paper => &[1, 2, 4, 8, 16, 20],
            Scale::Quick => &[1, 2],
        }
    }

    /// Memory-load percentages for the loaded sweeps (Fig. 6 right).
    pub fn load_sweep_pct(self) -> &'static [u8] {
        match self {
            Scale::Paper => &[10, 20, 40, 60, 80],
            Scale::Quick => &[10, 40],
        }
    }
}
