//! The fault-injection experiment (`repro chaos`).
//!
//! Exercises the replication loop well off the happy path and proves the
//! three properties the fault plane is built around, all in simulated
//! time (every reported number is deterministic — the gate compares them
//! exactly):
//!
//! 1. **Recovery.** A seeded sweep schedules one of every transfer fault
//!    — corruption (rejected by the wire checksums), a link flap, a drop
//!    burst past the retry budget (aborting the epoch), added delay and a
//!    replica-side decode refusal — and reports the retry/recovery/abort
//!    counters plus the worst commit-to-commit staleness the aborted
//!    epoch opened up.
//! 2. **Failover.** A primary crash injected at the entry of the Transfer
//!    stage, while a checkpoint is in flight and unacked, must activate
//!    the replica from the *last fully-acked* epoch — the commit-ledger
//!    invariant, surfaced as `crash_resumes_last_acked`.
//! 3. **Determinism.** The sweep re-runs with the same seeds and must
//!    reproduce the identical [`RunReport::fingerprint`] — which is what
//!    makes any chaos failure a one-line reproducer.
//!
//! [`RunReport::fingerprint`]: here_core::RunReport::fingerprint

use here_core::{ChaosStats, FaultKind, FaultPlan, ReplicationConfig, RunReport, Scenario, Stage};
use here_hypervisor::fault::DosOutcome;
use here_sim_core::time::SimDuration;
use here_workloads::memstress::MemStress;

use super::Scale;

/// Seed of every fault plan the experiment schedules.
pub const PLAN_SEED: u64 = 7;

/// Seed of the scenario runs (workload stream etc.).
pub const RUN_SEED: u64 = 42;

/// Epoch at which the crash run downs the primary (mid-transfer).
pub const CRASH_EPOCH: u64 = 5;

/// Everything `repro chaos` reports.
#[derive(Debug, Clone)]
pub struct ChaosOutput {
    /// Seed of the fault plans ([`PLAN_SEED`]).
    pub plan_seed: u64,
    /// Seed of the scenario runs ([`RUN_SEED`]).
    pub run_seed: u64,
    /// Fault-plane counters of the sweep run.
    pub sweep: ChaosStats,
    /// Epochs the sweep committed.
    pub commits: usize,
    /// Checkpoint records the sweep produced (must equal `commits`).
    pub checkpoints: usize,
    /// Worst commit-to-commit staleness of the sweep, milliseconds of
    /// simulated time (the aborted epoch widens it past two periods).
    pub worst_staleness_ms: f64,
    /// Last sequence number the crash run committed before the fault.
    pub crash_last_committed: u64,
    /// Checkpoint the crash run's failover activated the replica from.
    pub crash_resumed_from: u64,
    /// The commit-ledger invariant: the failover resumed exactly from the
    /// last fully-acked epoch, not the in-flight one.
    pub crash_resumes_last_acked: bool,
    /// Failure-to-detection latency of the crash run, simulated ms.
    pub detection_ms: f64,
    /// Client-visible outage of the crash run, simulated ms.
    pub outage_ms: f64,
    /// Report fingerprint of the sweep run.
    pub fingerprint: u64,
    /// True when the same-seed rerun reproduced `fingerprint` exactly.
    pub deterministic: bool,
    /// The whole report as a JSON document (`BENCH_chaos.json`).
    pub json: String,
}

fn scale_params(scale: Scale) -> (u64, u64) {
    // (VM memory MiB, scenario seconds); a 2 s fixed period throughout.
    match scale {
        Scale::Paper => (128, 60),
        Scale::Quick => (64, 30),
    }
}

/// The sweep's schedule: one of every transfer fault, each on its own
/// epoch, with the drop burst sized past the default retry budget.
fn sweep_plan() -> FaultPlan {
    FaultPlan::new(PLAN_SEED)
        .with_event(2, FaultKind::Corrupt { attempts: 2 })
        .with_event(4, FaultKind::LinkFlap { attempts_down: 1 })
        .with_event(6, FaultKind::Drop { attempts: 10 })
        .with_event(
            8,
            FaultKind::Delay {
                by: SimDuration::from_millis(5),
            },
        )
        .with_event(10, FaultKind::DecodeFail { attempts: 1 })
}

fn run(scale: Scale, plan: FaultPlan) -> RunReport {
    let (mem_mib, secs) = scale_params(scale);
    Scenario::builder()
        .name("chaos")
        .vm_memory_mib(mem_mib)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
        .config(ReplicationConfig::fixed_period(SimDuration::from_secs(2)))
        .duration(SimDuration::from_secs(secs))
        .seed(RUN_SEED)
        .verify_consistency()
        .chaos(plan)
        .build()
        .expect("chaos scenario is valid")
        .run()
}

/// Runs the sweep, the mid-transfer crash and the determinism rerun.
pub fn run_chaos(scale: Scale) -> ChaosOutput {
    // 1. The fault sweep: every transfer fault recovered or aborted.
    let sweep = run(scale, sweep_plan());
    let stats = sweep.chaos.expect("sweep plan is armed");
    let worst_staleness_ms = sweep
        .worst_staleness()
        .expect("the sweep commits epochs")
        .as_secs_f64()
        * 1e3;

    // 2. The commit-ledger invariant: a crash while checkpoint
    //    CRASH_EPOCH is in flight must resume from CRASH_EPOCH - 1.
    let crash = run(
        scale,
        FaultPlan::new(PLAN_SEED).with_event(
            CRASH_EPOCH,
            FaultKind::PrimaryFault {
                outcome: DosOutcome::Crash,
                stage: Stage::Transfer,
            },
        ),
    );
    let fo = crash
        .failover
        .expect("an injected primary crash must fail over");
    let crash_last_committed = crash
        .commits
        .last()
        .expect("epochs committed before the crash")
        .seq;
    let crash_resumes_last_acked = fo.resumed_from_checkpoint == crash_last_committed
        && crash_last_committed == CRASH_EPOCH - 1;
    let detection_ms = fo
        .detected_at
        .saturating_duration_since(fo.failed_at)
        .as_secs_f64()
        * 1e3;
    let outage_ms = fo.outage().as_secs_f64() * 1e3;

    // 3. Determinism: the same seeds replay to the same fingerprint.
    let rerun = run(scale, sweep_plan());
    let fingerprint = sweep.fingerprint();
    let deterministic = rerun.fingerprint() == fingerprint;

    let mut out = ChaosOutput {
        plan_seed: PLAN_SEED,
        run_seed: RUN_SEED,
        sweep: stats,
        commits: sweep.commits.len(),
        checkpoints: sweep.checkpoints.len(),
        worst_staleness_ms,
        crash_last_committed,
        crash_resumed_from: fo.resumed_from_checkpoint,
        crash_resumes_last_acked,
        detection_ms,
        outage_ms,
        fingerprint,
        deterministic,
        json: String::new(),
    };
    out.json = render_json(&out);
    out
}

fn render_json(o: &ChaosOutput) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"chaos\",\n");
    out.push_str("  \"sweep\": {\n");
    out.push_str(&format!("    \"plan_seed\": {},\n", o.plan_seed));
    out.push_str(&format!("    \"run_seed\": {},\n", o.run_seed));
    out.push_str(&format!(
        "    \"faults_injected\": {},\n",
        o.sweep.faults_injected
    ));
    out.push_str(&format!(
        "    \"transfer_retries\": {},\n",
        o.sweep.transfer_retries
    ));
    out.push_str(&format!(
        "    \"transfer_recoveries\": {},\n",
        o.sweep.transfer_recoveries
    ));
    out.push_str(&format!(
        "    \"epochs_aborted\": {},\n",
        o.sweep.epochs_aborted
    ));
    out.push_str(&format!("    \"commits\": {},\n", o.commits));
    out.push_str(&format!("    \"checkpoints\": {},\n", o.checkpoints));
    out.push_str(&format!(
        "    \"worst_staleness_ms\": {:.3}\n",
        o.worst_staleness_ms
    ));
    out.push_str("  },\n");
    out.push_str("  \"crash\": {\n");
    out.push_str(&format!("    \"fault_epoch\": {CRASH_EPOCH},\n"));
    out.push_str(&format!(
        "    \"last_committed_seq\": {},\n",
        o.crash_last_committed
    ));
    out.push_str(&format!(
        "    \"resumed_from_checkpoint\": {},\n",
        o.crash_resumed_from
    ));
    out.push_str(&format!(
        "    \"crash_resumes_last_acked\": {},\n",
        o.crash_resumes_last_acked
    ));
    out.push_str(&format!("    \"detection_ms\": {:.3},\n", o.detection_ms));
    out.push_str(&format!("    \"outage_ms\": {:.3}\n", o.outage_ms));
    out.push_str("  },\n");
    out.push_str("  \"determinism\": {\n");
    out.push_str(&format!(
        "    \"fingerprint\": \"0x{:016x}\",\n",
        o.fingerprint
    ));
    out.push_str(&format!("    \"deterministic\": {}\n", o.deterministic));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_proves_recovery_failover_and_determinism() {
        let out = run_chaos(Scale::Quick);
        // Sweep: 2 corrupt + 1 link-down + 3 drop + 1 decode-refused
        // retries; corrupt/flap/decode epochs recover, the drop epoch
        // aborts (the delayed epoch delivers on the first attempt).
        assert_eq!(out.sweep.transfer_retries, 7);
        assert_eq!(out.sweep.transfer_recoveries, 3);
        assert_eq!(out.sweep.epochs_aborted, 1);
        assert_eq!(out.commits, out.checkpoints);
        assert!(out.commits >= 10, "got {} commits", out.commits);
        assert!(
            out.worst_staleness_ms >= 4000.0,
            "the abort must widen staleness past two periods, got {} ms",
            out.worst_staleness_ms
        );
        // Crash: the ledger invariant holds and detection is heartbeats.
        assert!(out.crash_resumes_last_acked);
        assert_eq!(out.crash_resumed_from, CRASH_EPOCH - 1);
        assert!(out.detection_ms > 0.0 && out.outage_ms >= out.detection_ms);
        // Determinism, and the artifact carries only deterministic keys.
        assert!(out.deterministic);
        assert!(out.json.contains("\"crash_resumes_last_acked\": true"));
        assert!(out.json.contains("\"deterministic\": true"));
        assert!(!out.json.contains("wall"));
    }
}
