//! The replication-health-plane experiment (`repro health`).
//!
//! Arms the health plane over an N = 3 / quorum = 2 replica set and
//! proves its three observability properties, all in simulated time so
//! the gate compares every number exactly:
//!
//! 1. **Quiet means quiet.** A fault-free run must end with every
//!    replica `healthy`, an empty alert log and zero health transitions
//!    — the alert rules are tuned so a clean protection loop never pages.
//! 2. **Faults page, recoveries resolve.** A sustained partition of
//!    replica 2 (past the retry budget, epochs [`PARTITION_FIRST`] to
//!    [`PARTITION_LAST`]) must walk that replica
//!    `healthy → lagging → stale` and fire the `stale_replica` and
//!    `quorum_at_risk` alerts (plus `retry_storm` from the retry bursts);
//!    once the partition lifts and the backlog drains, every alert must
//!    resolve and the replica must recover to `healthy` through the
//!    hysteresis window — the ordered alert log captures the whole arc.
//! 3. **Determinism.** The faulted run re-runs under the same seeds and
//!    must reproduce the identical alert log, series export and
//!    [`RunReport::fingerprint`] byte for byte — an alert sequence is a
//!    one-line reproducer, not a flaky page.
//!
//! [`RunReport::fingerprint`]: here_core::RunReport::fingerprint

use here_core::{
    FanoutMode, FaultPlan, HealthSnapshot, ReplicationConfig, RunReport, Scenario, TopologyConfig,
};
use here_sim_core::time::SimDuration;
use here_vmstate::wire::fnv32;
use here_workloads::memstress::MemStress;

use super::Scale;

/// Seed of the fault plan the partition scenario schedules.
pub const PLAN_SEED: u64 = 7;

/// Seed of the scenario runs (workload stream etc.).
pub const RUN_SEED: u64 = 42;

/// Replica-set size of both scenarios.
pub const REPLICAS: u32 = 3;

/// Commit quorum of both scenarios.
pub const QUORUM: u32 = 2;

/// Epoch lag past which a trailing replica is declared stale.
pub const STALE_EPOCH_LAG: u64 = 4;

/// The partitioned replica of the faulted scenario.
pub const PARTITIONED_REPLICA: u32 = 2;

/// First epoch of the sustained partition.
pub const PARTITION_FIRST: u64 = 4;

/// Last epoch of the sustained partition.
pub const PARTITION_LAST: u64 = 9;

/// Link-down attempts per partitioned epoch — past the default retry
/// budget, so the replica misses every epoch in the span.
pub const PARTITION_ATTEMPTS_DOWN: u32 = 10;

/// Everything one scenario contributes to `BENCH_health.json`.
#[derive(Debug, Clone)]
pub struct HealthRunSummary {
    /// Epochs the quorum committed.
    pub commits: usize,
    /// Alert log entries that fired.
    pub alerts_fired: usize,
    /// Alert log entries that resolved.
    pub alerts_resolved: usize,
    /// Alerts still active when the run ended (must be 0).
    pub active_alerts: usize,
    /// Health-state transitions the tracker recorded.
    pub transitions: usize,
    /// Final per-replica health states, comma-joined in index order.
    pub final_states: String,
    /// The ordered alert arc, `rule:state@epoch` joined with `|`.
    pub alert_sequence: String,
    /// The ordered transition arc, `rN:from->to@epoch` joined with `|`.
    pub transition_sequence: String,
    /// Windows held across every health series.
    pub series_points: u64,
    /// FNV-32 of the JSONL series export.
    pub series_hash: u32,
    /// FNV-32 of the JSONL alert log.
    pub alert_log_hash: u32,
    /// Report fingerprint of the run.
    pub fingerprint: u64,
}

/// Everything `repro health` reports.
#[derive(Debug, Clone)]
pub struct HealthOutput {
    /// Seed of the fault plan ([`PLAN_SEED`]).
    pub plan_seed: u64,
    /// Seed of the scenario runs ([`RUN_SEED`]).
    pub run_seed: u64,
    /// The fault-free scenario (must not page).
    pub quiet: HealthRunSummary,
    /// The sustained-partition scenario (must page and resolve).
    pub stale: HealthRunSummary,
    /// Fingerprint of the same-seed partition rerun.
    pub rerun_fingerprint: u64,
    /// True when the rerun's alert log matched byte for byte.
    pub alert_log_identical: bool,
    /// True when the rerun's series export matched byte for byte.
    pub series_identical: bool,
    /// True when fingerprint, alert log and series all reproduced.
    pub deterministic: bool,
    /// The partition run's alert log, one JSON object per line
    /// (`health_alerts.jsonl`).
    pub alert_log_jsonl: String,
    /// The partition run's series export, one window per line
    /// (`health_series.jsonl`).
    pub series_jsonl: String,
    /// The whole report as a JSON document (`BENCH_health.json`).
    pub json: String,
}

fn scale_params(scale: Scale) -> (u64, u64) {
    // (VM memory MiB, scenario seconds); a 2 s fixed period throughout —
    // the same sizing the chaos and topology experiments use.
    match scale {
        Scale::Paper => (128, 60),
        Scale::Quick => (64, 30),
    }
}

/// The faulted scenario's schedule: replica 2's link stays down past the
/// retry budget for every epoch of the span.
fn partition_plan() -> FaultPlan {
    FaultPlan::new(PLAN_SEED).with_partition_span(
        PARTITION_FIRST..=PARTITION_LAST,
        &[PARTITIONED_REPLICA],
        PARTITION_ATTEMPTS_DOWN,
    )
}

fn run(scale: Scale, name: &str, plan: Option<FaultPlan>) -> RunReport {
    let (mem_mib, secs) = scale_params(scale);
    let config = ReplicationConfig::fixed_period(SimDuration::from_secs(2))
        .with_topology(TopologyConfig {
            replicas: REPLICAS,
            quorum: QUORUM,
            fanout: FanoutMode::Star,
            stale_epoch_lag: STALE_EPOCH_LAG,
        })
        .with_health_plane();
    let mut builder = Scenario::builder()
        .name(name)
        .vm_memory_mib(mem_mib)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
        .config(config)
        .duration(SimDuration::from_secs(secs))
        .seed(RUN_SEED);
    builder = match plan {
        // The partitioned replica spends most of the run diverged, so the
        // faulted scenario skips the end-of-run consistency sweep; the
        // quiet scenario keeps it.
        Some(plan) => builder.chaos(plan),
        None => builder.verify_consistency(),
    };
    builder.build().expect("health scenario is valid").run()
}

fn health_of(report: &RunReport) -> &HealthSnapshot {
    report
        .telemetry
        .as_ref()
        .expect("protected runs snapshot telemetry")
        .health
        .as_ref()
        .expect("the scenario armed the health plane")
}

fn summarize(report: &RunReport) -> HealthRunSummary {
    let health = health_of(report);
    let alert_sequence = health
        .alert_log
        .iter()
        .map(|a| format!("{}:{}@{}", a.rule, a.state.label(), a.epoch))
        .collect::<Vec<_>>()
        .join("|");
    let transition_sequence = health
        .transitions
        .iter()
        .map(|t| {
            format!(
                "r{}:{}->{}@{}",
                t.replica,
                t.from.label(),
                t.to.label(),
                t.epoch
            )
        })
        .collect::<Vec<_>>()
        .join("|");
    let fired = health
        .alert_log
        .iter()
        .filter(|a| a.state.label() == "firing")
        .count();
    HealthRunSummary {
        commits: report.commits.len(),
        alerts_fired: fired,
        alerts_resolved: health.alert_log.len() - fired,
        active_alerts: health.active_alerts.len(),
        transitions: health.transitions.len(),
        final_states: health
            .states
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(","),
        alert_sequence,
        transition_sequence,
        series_points: health.series_points,
        series_hash: fnv32(health.series_jsonl.as_bytes()),
        alert_log_hash: fnv32(health.alert_log_jsonl.as_bytes()),
        fingerprint: report.fingerprint(),
    }
}

/// Runs the quiet scenario, the sustained partition and the determinism
/// rerun.
pub fn run_health(scale: Scale) -> HealthOutput {
    // 1. Fault-free: the plane observes and stays silent.
    let quiet = run(scale, "health-quiet", None);

    // 2. Sustained partition: replica 2 walks healthy → lagging → stale
    //    and back, alerts fire and resolve in order.
    let stale = run(scale, "health-stale", Some(partition_plan()));

    // 3. Determinism: same seeds, byte-identical alert log and series.
    let rerun = run(scale, "health-stale", Some(partition_plan()));
    let stale_health = health_of(&stale);
    let rerun_health = health_of(&rerun);
    let alert_log_identical = stale_health.alert_log_jsonl == rerun_health.alert_log_jsonl;
    let series_identical = stale_health.series_jsonl == rerun_health.series_jsonl;
    let rerun_fingerprint = rerun.fingerprint();
    let deterministic =
        alert_log_identical && series_identical && rerun_fingerprint == stale.fingerprint();

    let alert_log_jsonl = stale_health.alert_log_jsonl.clone();
    let series_jsonl = stale_health.series_jsonl.clone();
    let mut out = HealthOutput {
        plan_seed: PLAN_SEED,
        run_seed: RUN_SEED,
        quiet: summarize(&quiet),
        stale: summarize(&stale),
        rerun_fingerprint,
        alert_log_identical,
        series_identical,
        deterministic,
        alert_log_jsonl,
        series_jsonl,
        json: String::new(),
    };
    out.json = render_json(&out);
    out
}

fn render_summary(out: &mut String, label: &str, s: &HealthRunSummary, last: bool) {
    out.push_str(&format!("  \"{label}\": {{\n"));
    out.push_str(&format!("    \"commits\": {},\n", s.commits));
    out.push_str(&format!("    \"alerts_fired\": {},\n", s.alerts_fired));
    out.push_str(&format!(
        "    \"alerts_resolved\": {},\n",
        s.alerts_resolved
    ));
    out.push_str(&format!("    \"active_alerts\": {},\n", s.active_alerts));
    out.push_str(&format!("    \"transitions\": {},\n", s.transitions));
    out.push_str(&format!("    \"final_states\": \"{}\",\n", s.final_states));
    out.push_str(&format!(
        "    \"alert_sequence\": \"{}\",\n",
        s.alert_sequence
    ));
    out.push_str(&format!(
        "    \"transition_sequence\": \"{}\",\n",
        s.transition_sequence
    ));
    out.push_str(&format!("    \"series_points\": {},\n", s.series_points));
    out.push_str(&format!(
        "    \"series_hash\": \"0x{:08x}\",\n",
        s.series_hash
    ));
    out.push_str(&format!(
        "    \"alert_log_hash\": \"0x{:08x}\",\n",
        s.alert_log_hash
    ));
    out.push_str(&format!(
        "    \"fingerprint\": \"0x{:016x}\"\n",
        s.fingerprint
    ));
    out.push_str(if last { "  }\n" } else { "  },\n" });
}

fn render_json(o: &HealthOutput) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"health\",\n");
    out.push_str(&format!("  \"plan_seed\": {},\n", o.plan_seed));
    out.push_str(&format!("  \"run_seed\": {},\n", o.run_seed));
    out.push_str(&format!("  \"replicas\": {REPLICAS},\n"));
    out.push_str(&format!("  \"quorum\": {QUORUM},\n"));
    out.push_str(&format!("  \"stale_epoch_lag\": {STALE_EPOCH_LAG},\n"));
    out.push_str("  \"partition\": {\n");
    out.push_str(&format!("    \"replica\": {PARTITIONED_REPLICA},\n"));
    out.push_str(&format!("    \"first_epoch\": {PARTITION_FIRST},\n"));
    out.push_str(&format!("    \"last_epoch\": {PARTITION_LAST},\n"));
    out.push_str(&format!(
        "    \"attempts_down\": {PARTITION_ATTEMPTS_DOWN}\n"
    ));
    out.push_str("  },\n");
    render_summary(&mut out, "quiet", &o.quiet, false);
    render_summary(&mut out, "stale", &o.stale, false);
    out.push_str("  \"determinism\": {\n");
    out.push_str(&format!(
        "    \"fingerprint\": \"0x{:016x}\",\n",
        o.rerun_fingerprint
    ));
    out.push_str(&format!(
        "    \"alert_log_identical\": {},\n",
        o.alert_log_identical
    ));
    out.push_str(&format!(
        "    \"series_identical\": {},\n",
        o.series_identical
    ));
    out.push_str(&format!("    \"deterministic\": {}\n", o.deterministic));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_runs_never_page_and_partitions_page_then_resolve() {
        let out = run_health(Scale::Quick);

        // Quiet: the plane observes (series fill) but stays silent.
        assert_eq!(out.quiet.alerts_fired, 0, "{}", out.quiet.alert_sequence);
        assert_eq!(out.quiet.alerts_resolved, 0);
        assert_eq!(out.quiet.active_alerts, 0);
        assert_eq!(
            out.quiet.transitions, 0,
            "{}",
            out.quiet.transition_sequence
        );
        assert_eq!(out.quiet.final_states, "healthy,healthy,healthy");
        assert!(out.quiet.series_points > 0);
        assert!(out.quiet.commits >= 10, "got {} commits", out.quiet.commits);

        // Partition: the stale arc fires, resolves, and the replica
        // recovers through the hysteresis window.
        assert!(out.stale.alerts_fired >= 2, "{}", out.stale.alert_sequence);
        assert_eq!(out.stale.alerts_fired, out.stale.alerts_resolved);
        assert_eq!(out.stale.active_alerts, 0, "{}", out.stale.alert_sequence);
        for arc in [
            "stale_replica:firing@",
            "stale_replica:resolved@",
            "quorum_at_risk:firing@",
            "quorum_at_risk:resolved@",
        ] {
            assert!(
                out.stale.alert_sequence.contains(arc),
                "missing {arc} in {}",
                out.stale.alert_sequence
            );
        }
        for arc in [
            "r2:healthy->lagging@",
            "r2:lagging->stale@",
            "r2:stale->recovering@",
            "r2:recovering->healthy@",
        ] {
            assert!(
                out.stale.transition_sequence.contains(arc),
                "missing {arc} in {}",
                out.stale.transition_sequence
            );
        }
        assert_eq!(out.stale.final_states, "healthy,healthy,healthy");

        // The artifacts carry the same log the summary hashed.
        assert_eq!(
            fnv32(out.alert_log_jsonl.as_bytes()),
            out.stale.alert_log_hash
        );
        assert_eq!(fnv32(out.series_jsonl.as_bytes()), out.stale.series_hash);
        assert!(out.alert_log_jsonl.contains("\"rule\":\"stale_replica\""));
        assert!(out
            .series_jsonl
            .contains("\"metric\":\"here_replica_lag_epochs\""));

        // Determinism, and the artifact carries only deterministic keys.
        assert!(out.deterministic);
        assert!(out.alert_log_identical && out.series_identical);
        assert!(out.json.contains("\"deterministic\": true"));
        assert!(!out.json.contains("wall"));
    }
}
