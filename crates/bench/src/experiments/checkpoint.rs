//! Checkpoint experiments: Fig. 5 (linearity of page send time) and Fig. 8
//! (checkpoint transfer times and degradations, Remus vs HERE).

use here_core::{ReplicationConfig, Scenario, Strategy};
use here_sim_core::stats::{linear_fit, LinearFit};
use here_sim_core::time::SimDuration;
use here_workloads::memstress::MemStress;

use super::Scale;

/// Fig. 5's dataset: `(dirty pages, send time seconds)` scatter plus the
/// least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// One point per checkpoint observed.
    pub points: Vec<(f64, f64)>,
    /// The fitted line (the paper's claim: `f(N) = αN`, so `r_squared`
    /// must be ≈ 1 and the intercept small).
    pub fit: LinearFit,
}

/// Fig. 5: sweep the microbenchmark load so checkpoints carry widely
/// varying dirty-page counts, then fit send time against count.
pub fn run_fig5(scale: Scale) -> Fig5Result {
    let (gib, loads): (u64, &[u8]) = match scale {
        Scale::Paper => (20, &[2, 5, 10, 20, 30, 45, 60, 80]),
        Scale::Quick => (1, &[10, 40, 80]),
    };
    let mut points = Vec::new();
    for &pct in loads {
        let report = Scenario::builder()
            .name(format!("fig5-{pct}"))
            .vm_memory_gib(gib)
            .vcpus(4)
            .workload(Box::new(MemStress::with_percent(pct)))
            // Single-stream sender, as in the paper's Fig. 5 setup.
            .config(ReplicationConfig::remus(SimDuration::from_secs(8)))
            .duration(SimDuration::from_secs(40))
            .build()
            .expect("valid scenario")
            .run();
        for c in &report.checkpoints {
            points.push((c.dirty_pages as f64, c.pause.as_secs_f64()));
        }
    }
    let fit = linear_fit(&points).expect("enough checkpoints for a fit");
    Fig5Result { points, fit }
}

/// One memory size of Fig. 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// VM memory size in GiB.
    pub gib: u64,
    /// Remus mean checkpoint transfer time (seconds).
    pub remus_secs: f64,
    /// HERE mean checkpoint transfer time (seconds).
    pub here_secs: f64,
    /// Remus mean degradation, percent.
    pub remus_deg_pct: f64,
    /// HERE mean degradation, percent.
    pub here_deg_pct: f64,
}

impl Fig8Row {
    /// HERE's transfer-time reduction over Remus, percent.
    pub fn improvement_pct(&self) -> f64 {
        (self.remus_secs - self.here_secs) / self.remus_secs * 100.0
    }
}

fn one_fig8_run(gib: u64, loaded: bool, strategy: Strategy) -> (f64, f64) {
    let period = SimDuration::from_secs(8);
    let config = match strategy {
        Strategy::Remus => ReplicationConfig::remus(period),
        Strategy::Here => ReplicationConfig::fixed_period(period),
    };
    let mut builder = Scenario::builder()
        .name(format!("fig8-{gib}gib"))
        .vm_memory_gib(gib)
        .vcpus(4)
        .config(config)
        .duration(SimDuration::from_secs(60));
    if loaded {
        builder = builder.workload(Box::new(MemStress::with_percent(30)));
    }
    let report = builder.build().expect("valid scenario").run();
    (
        report.mean_pause().expect("checkpoints ran").as_secs_f64(),
        report.mean_degradation().expect("checkpoints ran") * 100.0,
    )
}

/// Fig. 8: checkpoint transfer times and degradations across memory sizes.
/// `loaded = false` reproduces panes (a)/(c); `true` reproduces (b)/(d).
pub fn run_fig8(scale: Scale, loaded: bool) -> Vec<Fig8Row> {
    scale
        .memory_sweep_gib()
        .iter()
        .map(|&gib| {
            let (remus_secs, remus_deg_pct) = one_fig8_run(gib, loaded, Strategy::Remus);
            let (here_secs, here_deg_pct) = one_fig8_run(gib, loaded, Strategy::Here);
            Fig8Row {
                gib,
                remus_secs,
                here_secs,
                remus_deg_pct,
                here_deg_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_send_time_is_linear_in_dirty_pages() {
        let result = run_fig5(Scale::Quick);
        assert!(result.points.len() >= 10);
        assert!(result.fit.r_squared > 0.98, "r² = {}", result.fit.r_squared);
        assert!(result.fit.slope > 0.0);
    }

    #[test]
    fn fig8_here_beats_remus_and_load_dominates_idle() {
        let idle = run_fig8(Scale::Quick, false);
        let loaded = run_fig8(Scale::Quick, true);
        for (i, l) in idle.iter().zip(&loaded) {
            assert!(
                i.improvement_pct() > 20.0,
                "idle improvement {}",
                i.improvement_pct()
            );
            assert!(
                l.improvement_pct() > 20.0,
                "loaded improvement {}",
                l.improvement_pct()
            );
            assert!(l.remus_secs > i.remus_secs * 5.0, "load must dominate");
            assert!(l.remus_deg_pct > i.remus_deg_pct);
        }
    }

    #[test]
    fn fig8_idle_degradation_is_below_one_percent() {
        let idle = run_fig8(Scale::Quick, false);
        for row in &idle {
            assert!(
                row.remus_deg_pct < 1.0,
                "{} GiB idle Remus degradation {}",
                row.gib,
                row.remus_deg_pct
            );
        }
    }
}
