//! Network latency experiment: Fig. 17 (Sockperf under-load).

use here_core::Scenario;
use here_sim_core::time::SimDuration;
use here_workloads::sockperf::{Sockperf, SockperfLoad, ALL_LOADS};

use super::apps::Config;
use super::Scale;

/// Fig. 17's config set.
pub const FIG17_CONFIGS: [Config; 5] = [
    Config::Xen,
    Config::Here3s40,
    Config::Here5s30,
    Config::Remus3s,
    Config::Remus5s,
];

/// One bar of Fig. 17.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig17Bar {
    /// Payload configuration.
    pub load: SockperfLoad,
    /// Replication configuration.
    pub config: Config,
    /// Mean client-observed latency in microseconds (the paper plots this
    /// on a log scale).
    pub mean_latency_us: f64,
}

fn run_sockperf_once(load: SockperfLoad, config: Config, duration: SimDuration) -> f64 {
    let mut b = Scenario::builder()
        .name(format!("sockperf-{}-{}", load.label(), config.label()))
        .vm_memory_mib(512)
        .vcpus(4)
        .workload(Box::new(Sockperf::new(load)))
        .duration(duration);
    b = match config.replication() {
        Some(cfg) => {
            let warmup = super::apps::dynamic_warmup(&cfg);
            b.config(cfg).warmup_under_load(warmup)
        }
        None => b.unprotected(),
    };
    let report = b.build().expect("valid scenario").run();
    report
        .packet_latencies
        .mean()
        .expect("sockperf always emits replies")
        * 1e6
}

/// Fig. 17: every payload load × every configuration.
pub fn run_fig17(scale: Scale) -> Vec<Fig17Bar> {
    let (loads, duration): (&[SockperfLoad], SimDuration) = match scale {
        Scale::Paper => (&ALL_LOADS, SimDuration::from_secs(120)),
        Scale::Quick => (
            &[SockperfLoad::A, SockperfLoad::C],
            SimDuration::from_secs(60),
        ),
    };
    let mut bars = Vec::new();
    for &load in loads {
        for &config in &FIG17_CONFIGS {
            bars.push(Fig17Bar {
                load,
                config,
                mean_latency_us: run_sockperf_once(load, config, duration),
            });
        }
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency(bars: &[Fig17Bar], load: SockperfLoad, config: Config) -> f64 {
        bars.iter()
            .find(|b| b.load == load && b.config == config)
            .expect("bar present")
            .mean_latency_us
    }

    #[test]
    fn fig17_latency_ordering_matches_the_paper() {
        let bars = run_fig17(Scale::Quick);
        for &load in &[SockperfLoad::A, SockperfLoad::C] {
            let xen = latency(&bars, load, Config::Xen);
            let here3 = latency(&bars, load, Config::Here3s40);
            let here5 = latency(&bars, load, Config::Here5s30);
            let remus3 = latency(&bars, load, Config::Remus3s);
            let remus5 = latency(&bars, load, Config::Remus5s);
            // Bare Xen: sub-millisecond. Remus: checkpoint-period scale,
            // with Remus5 > Remus3. HERE dynamic: far below Remus.
            assert!(xen < 1_000.0, "xen {xen}");
            assert!(remus5 > remus3, "remus5 {remus5} vs remus3 {remus3}");
            assert!(remus3 > 3.0 * here3, "remus3 {remus3} vs here {here3}");
            assert!(here3 < 400_000.0, "here3 {here3}");
            assert!(here5 < 500_000.0, "here5 {here5}");
        }
    }

    #[test]
    fn fig17_baseline_latency_scales_with_packet_size() {
        let bars = run_fig17(Scale::Quick);
        let a = latency(&bars, SockperfLoad::A, Config::Xen);
        let c = latency(&bars, SockperfLoad::C, Config::Xen);
        assert!(c > a, "jumbo frames must cost more on the baseline");
    }
}
