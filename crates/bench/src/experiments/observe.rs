//! The telemetry-layer experiment (`repro observe`).
//!
//! Two questions, one run:
//!
//! 1. **What does the instrumentation cost?** The observability layer sits
//!    on the checkpoint hot path — per-lane `Instant` probes, histogram
//!    observes, flight-recorder writes. This experiment re-runs the
//!    datapath's 8-lane materialized encode twice per round, once through
//!    the plain [`encode_pages_parallel`] entry point and once through the
//!    timed variant with every telemetry hook live (lane histograms,
//!    stage histogram, flight events), and reports the relative overhead.
//!    The acceptance bar is **< 5 %**.
//! 2. **What does a run's telemetry look like?** A short dynamic-period
//!    replicated scenario runs with the always-on layer, and its frozen
//!    [`TelemetrySnapshot`](here_core::TelemetrySnapshot) — Prometheus
//!    exposition, flight-recorder dump, SLO summary — lands in
//!    `BENCH_observe.json`.
//!
//! Both measurements are real wall-clock; results vary with the host. The
//! overhead comparison interleaves baseline and instrumented rounds so
//! slow drift (thermal, scheduler) hits both variants equally.

use std::time::Instant;

use here_core::dataplane::{
    encode_pages_parallel, encode_pages_parallel_timed, BufferPool, LanePool, PayloadMode,
};
use here_core::transfer::{collect_chunked_into, CollectScratch};
use here_core::{ReplicationConfig, Scenario};
use here_hypervisor::dirty::DirtyBitmap;
use here_hypervisor::memory::GuestMemory;
use here_hypervisor::vcpu::VcpuId;
use here_hypervisor::PAGE_SIZE;
use here_sim_core::rate::ByteSize;
use here_sim_core::time::SimDuration;
use here_telemetry::{FlightEvent, FlightRecorder, MetricsRegistry};
use here_vmstate::MemoryDelta;
use here_workloads::memstress::MemStress;

use super::Scale;

/// Encode lanes used by the overhead comparison (the acceptance bar's
/// configuration).
pub const OVERHEAD_LANES: u32 = 8;

/// Everything `repro observe` reports.
#[derive(Debug, Clone)]
pub struct ObserveOutput {
    /// Host cores, recorded for reproducibility of the wall-clock numbers.
    pub host_cpus: usize,
    /// Dirty pages per overhead round.
    pub pages: u64,
    /// Measured rounds (after one warmup).
    pub rounds: u32,
    /// Encode lanes in the overhead comparison.
    pub lanes: u32,
    /// Median 8-lane encode wall time through the uninstrumented entry
    /// point, milliseconds.
    pub baseline_ms: f64,
    /// The same encode through the timed entry point with all telemetry
    /// hooks live, milliseconds.
    pub instrumented_ms: f64,
    /// `(instrumented - baseline) / baseline`, percent. Negative values
    /// mean the difference drowned in host noise.
    pub overhead_pct: f64,
    /// Metric families registered by the scenario run.
    pub metric_count: usize,
    /// Flight events the scenario run recorded (retained + evicted).
    pub flight_events_recorded: u64,
    /// Flight events the bounded ring evicted.
    pub flight_events_dropped: u64,
    /// Checkpoints the SLO tracker evaluated.
    pub slo_evaluated: u64,
    /// SLO breaches observed.
    pub slo_breaches: u64,
    /// The scenario run's Prometheus text exposition.
    pub prometheus: String,
    /// The scenario run's flight-recorder JSON dump.
    pub flight_recorder_json: String,
    /// The whole report as a JSON document (`BENCH_observe.json`).
    pub json: String,
}

fn scale_params(scale: Scale) -> (u64, u32, u64) {
    // (dirty pages per overhead round, measured rounds, scenario seconds)
    match scale {
        Scale::Paper => (32_768, 9, 60),
        Scale::Quick => (4_096, 9, 20),
    }
}

/// Median of wall-time samples. Rounds are short (milliseconds), so one
/// scheduler preemption skews a mean by double digits; the median holds
/// as long as most rounds run clean.
fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    let mid = samples.len() / 2;
    let m = if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    };
    m * 1e3
}

/// A deterministic dirty working set (same shape as the datapath bench):
/// every third frame written once, round-robin across 4 writers.
fn dirty_delta(pages: u64) -> MemoryDelta {
    let frames = pages * 3;
    let mut memory = GuestMemory::new(ByteSize::from_bytes(
        frames.next_multiple_of(256) * PAGE_SIZE,
    ))
    .expect("bench guest size is valid");
    let mut dirty = DirtyBitmap::new(memory.num_pages());
    for i in 0..pages {
        let frame = here_hypervisor::PageId::new(i * 3);
        memory
            .write_page(frame, VcpuId::new((i % 4) as u32))
            .expect("frame is in range");
        dirty.mark(frame);
    }
    let mut scratch = CollectScratch::new();
    let mut delta = MemoryDelta::new();
    collect_chunked_into(&memory, &dirty, OVERHEAD_LANES, &mut scratch, &mut delta);
    assert_eq!(delta.len() as u64, pages, "harvest must see every page");
    delta
}

/// Runs the overhead comparison and the telemetry showcase scenario.
pub fn run_observe(scale: Scale) -> ObserveOutput {
    let (pages, rounds, scenario_secs) = scale_params(scale);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let delta = dirty_delta(pages);

    // The instrumented variant carries the full per-checkpoint telemetry
    // cost: timed lanes, two histogram observes per lane, one stage
    // histogram observe, and one flight event per lane plus one per round.
    let mut registry = MetricsRegistry::new();
    let lane_hist = registry.histogram("bench_encode_lane_wall_nanos", "per-lane encode wall");
    let stage_hist = registry.histogram("bench_stage_nanos", "whole-encode wall");
    let mut flight = FlightRecorder::new(1024);

    let mut pool = BufferPool::new();
    let lane_pool = LanePool::new();
    let mut baseline_samples = Vec::with_capacity(rounds as usize);
    let mut instrumented_samples = Vec::with_capacity(rounds as usize);
    for round in 0..=rounds {
        let measured = round > 0;

        let t = Instant::now();
        let segments = encode_pages_parallel(
            &delta,
            OVERHEAD_LANES,
            PayloadMode::Materialized,
            &mut pool,
            &lane_pool,
        );
        if measured {
            baseline_samples.push(t.elapsed().as_secs_f64());
        }
        for seg in segments {
            pool.recycle(seg);
        }

        let t = Instant::now();
        let (segments, walls) = encode_pages_parallel_timed(
            &delta,
            OVERHEAD_LANES,
            PayloadMode::Materialized,
            &mut pool,
            &lane_pool,
        );
        for (lane, wall) in walls.iter().enumerate() {
            lane_hist.observe(*wall);
            flight.record(FlightEvent::EncodeLane {
                seq: round as u64,
                at_nanos: 0,
                lane: lane as u64,
                wall_nanos: *wall,
            });
        }
        let total = t.elapsed().as_nanos() as u64;
        stage_hist.observe(total);
        flight.record(FlightEvent::Stage {
            seq: round as u64,
            stage: "translate",
            at_nanos: 0,
            duration_nanos: total,
            wall_nanos: Some(total),
            pages,
            bytes: pages * PAGE_SIZE,
        });
        if measured {
            instrumented_samples.push(t.elapsed().as_secs_f64());
        }
        for seg in segments {
            pool.recycle(seg);
        }
    }
    let baseline_ms = median_ms(&mut baseline_samples);
    let instrumented_ms = median_ms(&mut instrumented_samples);
    let overhead_pct = (instrumented_ms - baseline_ms) / baseline_ms * 100.0;

    // Showcase scenario: a dynamic-period replicated run whose report
    // carries the frozen telemetry snapshot.
    let report = Scenario::builder()
        .name("observe")
        .vm_memory_mib(64)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
        .config(ReplicationConfig::dynamic(0.3, SimDuration::from_secs(5)))
        .duration(SimDuration::from_secs(scenario_secs))
        .build()
        .expect("valid scenario")
        .run();
    let snapshot = report
        .telemetry
        .expect("replicated runs always carry telemetry");
    let slo = snapshot.slo.as_ref();

    let json = render_json(
        host_cpus,
        pages,
        rounds,
        baseline_ms,
        instrumented_ms,
        overhead_pct,
        &snapshot,
    );
    ObserveOutput {
        host_cpus,
        pages,
        rounds,
        lanes: OVERHEAD_LANES,
        baseline_ms,
        instrumented_ms,
        overhead_pct,
        metric_count: snapshot.registry.metrics.len(),
        flight_events_recorded: snapshot.flight_events_recorded,
        flight_events_dropped: snapshot.flight_events_dropped,
        slo_evaluated: slo.map_or(0, |s| s.evaluated),
        slo_breaches: slo.map_or(0, |s| s.degradation_breaches + s.period_cap_breaches),
        prometheus: snapshot.prometheus.clone(),
        flight_recorder_json: snapshot.flight_recorder_json.clone(),
        json,
    }
}

fn render_json(
    host_cpus: usize,
    pages: u64,
    rounds: u32,
    baseline_ms: f64,
    instrumented_ms: f64,
    overhead_pct: f64,
    snapshot: &here_core::TelemetrySnapshot,
) -> String {
    use here_telemetry::json_escape;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"observe\",\n");
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"overhead\": {\n");
    out.push_str(&format!("    \"lanes\": {OVERHEAD_LANES},\n"));
    out.push_str(&format!("    \"pages\": {pages},\n"));
    out.push_str(&format!("    \"rounds\": {rounds},\n"));
    out.push_str(&format!("    \"baseline_ms\": {baseline_ms:.3},\n"));
    out.push_str(&format!("    \"instrumented_ms\": {instrumented_ms:.3},\n"));
    out.push_str(&format!("    \"overhead_pct\": {overhead_pct:.2},\n"));
    out.push_str("    \"acceptance_pct\": 5.0\n");
    out.push_str("  },\n");
    out.push_str("  \"scenario\": {\n");
    out.push_str(&format!(
        "    \"metric_families\": {},\n",
        snapshot.registry.metrics.len()
    ));
    out.push_str(&format!(
        "    \"flight_events_recorded\": {},\n",
        snapshot.flight_events_recorded
    ));
    out.push_str(&format!(
        "    \"flight_events_dropped\": {},\n",
        snapshot.flight_events_dropped
    ));
    match &snapshot.slo {
        Some(s) => out.push_str(&format!(
            "    \"slo\": {{\"evaluated\": {}, \"compliant\": {}, \
             \"degradation_breaches\": {}, \"period_cap_breaches\": {}, \
             \"compliance_ratio\": {:.4}, \"worst_degradation\": {:.4}}},\n",
            s.evaluated,
            s.compliant,
            s.degradation_breaches,
            s.period_cap_breaches,
            s.compliance_ratio,
            s.worst_degradation,
        )),
        None => out.push_str("    \"slo\": null,\n"),
    }
    out.push_str(&format!(
        "    \"prometheus\": \"{}\",\n",
        json_escape(&snapshot.prometheus)
    ));
    // The flight dump is already JSON; embed it as a document, not a
    // string.
    out.push_str(&format!(
        "    \"flight_recorder\": {}\n",
        snapshot.flight_recorder_json.trim_end()
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_reports_overhead_and_telemetry() {
        let out = run_observe(Scale::Quick);
        assert!(out.baseline_ms > 0.0);
        assert!(out.instrumented_ms > 0.0);
        assert!(out.metric_count > 10, "got {}", out.metric_count);
        assert!(out.flight_events_recorded > 0);
        assert!(out.slo_evaluated > 0);
        assert!(out.prometheus.contains("here_checkpoints_total"));
        assert!(out.flight_recorder_json.contains("\"events\""));
        assert!(out.json.contains("\"acceptance_pct\": 5.0"));
        assert!(out.json.contains("\"flight_recorder\""));
    }
}
