//! The trace-analysis experiment (`repro analyze`).
//!
//! Runs a dynamic-period replicated scenario with a late accidental host
//! failure, then feeds the run's causal span tree through
//! [`TraceAnalyzer`]: per-epoch critical-path attribution against
//! `t = αN/P + C` (Eq. 4), straggler-lane detection, period-oscillation
//! detection and SLO-breach root-causing. The same spans are exported as
//! a Chrome trace-event document (`chrome://tracing` / Perfetto) and a
//! compact JSONL stream.
//!
//! Virtual-time quantities (stage durations, pauses, the attribution) are
//! deterministic; only the per-lane `wall_nanos` fields vary with the
//! host, so straggler verdicts are the one host-dependent part of the
//! report.

use here_core::{
    AnalysisReport, FailureCause, FailurePlan, ReplicationConfig, Scenario, TraceAnalyzer,
};
use here_hypervisor::fault::DosOutcome;
use here_sim_core::time::{SimDuration, SimTime};
use here_telemetry::{chrome_trace, spans_jsonl};
use here_workloads::memstress::MemStress;

use super::Scale;

/// Everything `repro analyze` reports.
#[derive(Debug, Clone)]
pub struct AnalyzeOutput {
    /// Spans the run emitted (epoch roots, stages, lanes, replica side,
    /// migration iterations, fault and failover).
    pub span_count: usize,
    /// Checkpoints analyzed.
    pub checkpoints: usize,
    /// Whether the injected failure actually produced a failover record.
    pub failover_captured: bool,
    /// The analyzer's full report.
    pub analysis: AnalysisReport,
    /// Chrome trace-event JSON for the whole run.
    pub chrome_json: String,
    /// One span per line, compact JSON.
    pub jsonl: String,
    /// Summary as a JSON document (virtual-time fields only, so the
    /// document is deterministic across hosts).
    pub json: String,
}

fn scenario_secs(scale: Scale) -> u64 {
    match scale {
        Scale::Paper => 120,
        Scale::Quick => 20,
    }
}

/// Runs the scenario, the analyzer and both exporters.
pub fn run_analyze(scale: Scale) -> AnalyzeOutput {
    let secs = scenario_secs(scale);
    let cfg = ReplicationConfig::dynamic(0.3, SimDuration::from_secs(5));
    let report = Scenario::builder()
        .name("analyze")
        .vm_memory_mib(64)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
        .config(cfg.clone())
        .duration(SimDuration::from_secs(secs))
        .failure(FailurePlan {
            // Late enough that the dynamic controller has settled and
            // there is a full epoch history to attribute.
            at: SimTime::from_secs(secs * 3 / 4),
            cause: FailureCause::Accident(DosOutcome::Crash),
            reattack_secondary: false,
        })
        .build()
        .expect("valid scenario")
        .run();

    let threads = cfg.effective_threads(4);
    let analysis = TraceAnalyzer::default().analyze(&report, &cfg.costs, threads, cfg.strategy);
    let chrome_json = chrome_trace(&report.spans);
    let jsonl = spans_jsonl(&report.spans);
    let json = render_json(&report.spans.len(), report.failover.is_some(), &analysis);
    AnalyzeOutput {
        span_count: report.spans.len(),
        checkpoints: report.checkpoints.len(),
        failover_captured: report.failover.is_some(),
        analysis,
        chrome_json,
        jsonl,
        json,
    }
}

fn render_json(span_count: &usize, failover: bool, a: &AnalysisReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"analyze\",\n");
    out.push_str(&format!("  \"spans\": {span_count},\n"));
    out.push_str(&format!("  \"failover_captured\": {failover},\n"));
    out.push_str(&format!("  \"epochs\": {},\n", a.epochs.len()));
    out.push_str(&format!(
        "  \"min_attributed_fraction\": {:.4},\n",
        a.min_attributed_fraction
    ));
    out.push_str(&format!("  \"stragglers\": {},\n", a.stragglers.len()));
    out.push_str(&format!(
        "  \"oscillation\": {{\"decisions\": {}, \"direction_flips\": {}, \
         \"flip_ratio\": {:.3}, \"walk_backs\": {}, \"midpoint_jumps\": {}, \
         \"oscillating\": {}}},\n",
        a.oscillation.decisions,
        a.oscillation.direction_flips,
        a.oscillation.flip_ratio,
        a.oscillation.walk_backs,
        a.oscillation.midpoint_jumps,
        a.oscillation.oscillating,
    ));
    out.push_str("  \"breach_roots\": [\n");
    for (i, b) in a.breach_roots.iter().enumerate() {
        let comma = if i + 1 < a.breach_roots.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"seq\": {}, \"kind\": \"{:?}\", \"measured\": {:.6}, \
             \"bound\": {:.6}, \"dominant_stage\": \"{}\", \
             \"stage_ms\": {:.3}, \"trailing_mean_ms\": {:.3}, \
             \"growth_pct\": {:.2}}}{comma}\n",
            b.seq,
            b.kind,
            b.measured,
            b.bound,
            b.dominant_stage,
            b.stage_duration.as_secs_f64() * 1e3,
            b.trailing_mean.as_secs_f64() * 1e3,
            b.growth_pct,
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"nesting_violations\": {},\n",
        a.nesting_violations
    ));
    out.push_str(&format!(
        "  \"unresolved_links\": {},\n",
        a.unresolved_links
    ));
    match &a.tree_error {
        Some(e) => out.push_str(&format!(
            "  \"tree_error\": \"{}\"\n",
            here_telemetry::json_escape(e)
        )),
        None => out.push_str("  \"tree_error\": null\n"),
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_attributes_and_exports() {
        let out = run_analyze(Scale::Quick);
        assert!(out.checkpoints > 0);
        assert!(out.failover_captured, "the planned accident must fire");
        assert!(out.span_count > out.checkpoints, "stages nest under epochs");
        assert!(
            out.analysis.min_attributed_fraction >= 0.95,
            "got {}",
            out.analysis.min_attributed_fraction
        );
        assert_eq!(out.analysis.nesting_violations, 0);
        assert_eq!(out.analysis.unresolved_links, 0);
        assert!(out.analysis.tree_error.is_none());
        // The failover spans ride on the controller track.
        assert!(out.chrome_json.contains("\"failover\""));
        assert!(out.chrome_json.contains("\"traceEvents\""));
        assert!(out.jsonl.lines().count() == out.span_count);
        assert!(out.json.contains("\"min_attributed_fraction\""));
    }
}
