//! Migration experiments: Fig. 6 (migration times) and Fig. 7 (replica
//! resumption times).

use here_core::{FailureCause, FailurePlan, ReplicationConfig, Scenario};
use here_hypervisor::fault::DosOutcome;
use here_sim_core::time::{SimDuration, SimTime};
use here_workloads::memstress::MemStress;

use super::Scale;

/// Distinct-page dirty rate used by the migration experiments. Kept below
/// the single-stream copy rate so pre-copy converges (see the memstress
/// module docs).
pub const MIGRATION_LOAD_RATE: u64 = 150_000;

/// One bar pair of Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// The x-axis value: memory size in GiB (left pane) or load percent
    /// (right pane).
    pub x: u64,
    /// Xen default migration time in seconds.
    pub xen_secs: f64,
    /// HERE multithreaded migration time in seconds.
    pub here_secs: f64,
}

impl Fig6Row {
    /// HERE's improvement over Xen, percent (negative = slower).
    pub fn improvement_pct(&self) -> f64 {
        (self.xen_secs - self.here_secs) / self.xen_secs * 100.0
    }
}

fn migration_time(gib: u64, load: Option<u8>, config: ReplicationConfig) -> f64 {
    let mut builder = Scenario::builder()
        .name(format!("fig6-{gib}gib-load{load:?}"))
        .vm_memory_gib(gib)
        .vcpus(4)
        .config(config)
        // Fig. 6 migrates a VM already under load.
        .load_during_seed()
        // One short epoch after seeding; the measurement is the migration.
        .duration(SimDuration::from_secs(1));
    if let Some(pct) = load {
        builder = builder.workload(Box::new(
            MemStress::with_percent(pct).with_rate(MIGRATION_LOAD_RATE),
        ));
    }
    let report = builder.build().expect("valid scenario").run();
    report
        .migration
        .expect("replicated run performs a seeding migration")
        .total
        .as_secs_f64()
}

/// Fig. 6 left: idle VM migration across memory sizes.
pub fn run_fig6_idle(scale: Scale) -> Vec<Fig6Row> {
    scale
        .memory_sweep_gib()
        .iter()
        .map(|&gib| Fig6Row {
            x: gib,
            xen_secs: migration_time(
                gib,
                None,
                ReplicationConfig::remus(SimDuration::from_secs(8)),
            ),
            here_secs: migration_time(
                gib,
                None,
                ReplicationConfig::fixed_period(SimDuration::from_secs(8)),
            ),
        })
        .collect()
}

/// Fig. 6 right: 20 GiB VM under the memory benchmark at varying loads.
pub fn run_fig6_loaded(scale: Scale) -> Vec<Fig6Row> {
    let gib = match scale {
        Scale::Paper => 20,
        Scale::Quick => 2,
    };
    scale
        .load_sweep_pct()
        .iter()
        .map(|&pct| Fig6Row {
            x: pct as u64,
            xen_secs: migration_time(
                gib,
                Some(pct),
                ReplicationConfig::remus(SimDuration::from_secs(8)),
            ),
            here_secs: migration_time(
                gib,
                Some(pct),
                ReplicationConfig::fixed_period(SimDuration::from_secs(8)),
            ),
        })
        .collect()
}

/// One point of Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// VM memory size in GiB.
    pub gib: u64,
    /// Replica resumption time in milliseconds.
    pub resumption_ms: f64,
}

/// Fig. 7: replica resumption time across memory sizes, idle or loaded.
pub fn run_fig7(scale: Scale, loaded: bool) -> Vec<Fig7Row> {
    scale
        .memory_sweep_gib()
        .iter()
        .map(|&gib| {
            let mut builder = Scenario::builder()
                .name(format!("fig7-{gib}gib"))
                .vm_memory_gib(gib)
                .vcpus(4)
                .config(ReplicationConfig::fixed_period(SimDuration::from_secs(8)))
                .duration(SimDuration::from_secs(30))
                .failure(FailurePlan {
                    at: SimTime::from_secs(17),
                    cause: FailureCause::Accident(DosOutcome::Crash),
                    reattack_secondary: false,
                });
            if loaded {
                builder = builder.workload(Box::new(
                    MemStress::with_percent(30).with_rate(MIGRATION_LOAD_RATE),
                ));
            }
            let report = builder.build().expect("valid scenario").run();
            let fo = report.failover.expect("failure plan must trigger failover");
            Fig7Row {
                gib,
                resumption_ms: fo.resumption_time().as_secs_f64() * 1e3,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_migration_gap_grows_with_memory() {
        let rows = run_fig6_idle(Scale::Quick);
        assert_eq!(rows.len(), 2);
        // HERE is slower (setup cost) for 1 GiB, and closes the gap by
        // 2 GiB; the improvement trend is monotone in memory size.
        assert!(rows[0].improvement_pct() < rows[1].improvement_pct());
        assert!(
            rows[0].improvement_pct() < 0.0,
            "1 GiB: HERE pays its setup cost ({:.1} %)",
            rows[0].improvement_pct()
        );
    }

    #[test]
    fn loaded_migration_slower_than_idle_and_here_wins() {
        let idle = run_fig6_idle(Scale::Quick);
        let loaded = run_fig6_loaded(Scale::Quick);
        // 2 GiB idle vs 2 GiB at 10 % load.
        assert!(loaded[0].xen_secs > idle[1].xen_secs);
        assert!(loaded[1].here_secs < loaded[1].xen_secs);
    }

    #[test]
    fn resumption_is_milliseconds_and_flat() {
        let rows = run_fig7(Scale::Quick, false);
        for r in &rows {
            assert!(
                (5.0..20.0).contains(&r.resumption_ms),
                "{} GiB: {} ms",
                r.gib,
                r.resumption_ms
            );
        }
        // Flat in memory size: within 2 ms of each other.
        let spread = rows
            .iter()
            .map(|r| r.resumption_ms)
            .fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)));
        assert!(spread.1 - spread.0 < 2.0);
    }
}
