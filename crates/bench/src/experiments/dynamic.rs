//! Dynamic checkpoint period experiments: Fig. 9 (phased memory load) and
//! Fig. 10 (YCSB Workload A).

use here_core::{ReplicationConfig, Scenario};
use here_sim_core::time::{SimDuration, SimTime};
use here_workloads::phased::{fig9_schedule, PhasedMemStress};
use here_workloads::ycsb::{Ycsb, YcsbMix, YcsbSpec};

use super::Scale;

/// The series Fig. 9 plots.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicSeries {
    /// `(seconds, period seconds)` — the blue "Period" line.
    pub period: Vec<(f64, f64)>,
    /// `(seconds, measured degradation percent)` — the black "Overhead"
    /// line.
    pub degradation: Vec<(f64, f64)>,
    /// `(seconds, load percent)` — the green "Load" line (Fig. 9 only).
    pub load: Vec<(f64, f64)>,
    /// The configured degradation target, percent (the red "Set Overhead"
    /// line).
    pub target_pct: f64,
    /// Mean measured degradation over the steady phases, percent.
    pub steady_mean_deg_pct: f64,
}

/// Fig. 9: D = 0.3, T_max = 25 s, 8 GiB / 4 vCPU, phased load
/// 20 % → 80 % → 5 %.
pub fn run_fig9(scale: Scale) -> DynamicSeries {
    let (gib, config) = match scale {
        Scale::Paper => (
            8,
            ReplicationConfig::dynamic(0.3, SimDuration::from_secs(25)),
        ),
        Scale::Quick => (
            2,
            ReplicationConfig::dynamic(0.3, SimDuration::from_secs(25))
                .with_sigma(SimDuration::from_millis(100)),
        ),
    };
    let duration = SimDuration::from_secs(180);
    let schedule = fig9_schedule();
    let workload = PhasedMemStress::new(schedule.clone()).expect("fig9 schedule is valid");
    let report = Scenario::builder()
        .name("fig9")
        .vm_memory_gib(gib)
        .vcpus(4)
        .workload(Box::new(workload))
        .config(config)
        // Let Algorithm 1 converge from T = T_max against the 20 % load
        // before recording, so the plot starts at the first phase's
        // equilibrium like the paper's.
        .warmup_under_load(SimDuration::from_secs(60))
        .duration(duration)
        .build()
        .expect("valid scenario")
        .run();

    let probe = PhasedMemStress::new(schedule).expect("valid");
    let load: Vec<(f64, f64)> = (0..=duration.as_millis() / 1000)
        .map(|s| (s as f64, probe.percent_at(SimTime::from_secs(s)) as f64))
        .collect();
    // Steady-state windows: skip 15 s after each phase change.
    let steady: Vec<f64> = report
        .degradation_series
        .samples()
        .iter()
        .filter(|&&(t, _)| {
            let s = t.as_secs_f64();
            (15.0..20.0).contains(&s) || (40.0..120.0).contains(&s) || (150.0..175.0).contains(&s)
        })
        .map(|&(_, v)| v)
        .collect();
    let steady_mean_deg_pct = if steady.is_empty() {
        f64::NAN
    } else {
        steady.iter().sum::<f64>() / steady.len() as f64
    };
    DynamicSeries {
        period: report.period_series.points().collect(),
        degradation: report.degradation_series.points().collect(),
        load,
        target_pct: 30.0,
        steady_mean_deg_pct,
    }
}

/// Fig. 10's output: the dynamic series plus the throughput comparison the
/// paper quotes (28 406 ops/s vs a 42 779 ops/s baseline, ≈ 33.6 % slower).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Result {
    /// The period/degradation series.
    pub series: DynamicSeries,
    /// Replicated throughput, ops/s.
    pub here_ops_per_sec: f64,
    /// Unreplicated baseline throughput, ops/s.
    pub baseline_ops_per_sec: f64,
}

impl Fig10Result {
    /// Observed slowdown, percent.
    pub fn slowdown_pct(&self) -> f64 {
        (self.baseline_ops_per_sec - self.here_ops_per_sec) / self.baseline_ops_per_sec * 100.0
    }
}

/// Fig. 10: YCSB Workload A under the dynamic period manager (D = 30 %).
pub fn run_fig10(scale: Scale) -> Fig10Result {
    let spec = match scale {
        Scale::Paper => YcsbSpec::paper(YcsbMix::A),
        Scale::Quick => YcsbSpec::small(YcsbMix::A),
    };
    let build = |replicated: bool| {
        let driver = Ycsb::new(spec).expect("valid spec");
        let pages = driver.required_pages();
        let mem_mib = (pages * here_hypervisor::PAGE_SIZE).div_ceil(1024 * 1024) + 64;
        let mut b = Scenario::builder()
            .name("fig10")
            .vm_memory_mib(mem_mib)
            .vcpus(4)
            .workload(Box::new(driver))
            .duration(SimDuration::from_secs(600));
        if replicated {
            b = b
                .config(ReplicationConfig::dynamic(0.3, SimDuration::from_secs(25)))
                .warmup_under_load(SimDuration::from_secs(60));
        } else {
            b = b.unprotected();
        }
        b.build().expect("valid scenario").run()
    };
    let here = build(true);
    let baseline = build(false);
    let steady: Vec<f64> = here
        .degradation_series
        .samples()
        .iter()
        .skip(3)
        .map(|&(_, v)| v)
        .collect();
    let steady_mean_deg_pct = if steady.is_empty() {
        f64::NAN
    } else {
        steady.iter().sum::<f64>() / steady.len() as f64
    };
    Fig10Result {
        series: DynamicSeries {
            period: here.period_series.points().collect(),
            degradation: here.degradation_series.points().collect(),
            load: Vec::new(),
            target_pct: 30.0,
            steady_mean_deg_pct,
        },
        here_ops_per_sec: here.throughput_ops_per_sec,
        baseline_ops_per_sec: baseline.throughput_ops_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_period_tracks_the_load_level() {
        let out = run_fig9(Scale::Quick);
        // Mean period during the 80 % phase must exceed the 20 % phase,
        // which must exceed the 5 % phase.
        let mean_in = |lo: f64, hi: f64| {
            let vals: Vec<f64> = out
                .period
                .iter()
                .filter(|&&(t, _)| t >= lo && t < hi)
                .map(|&(_, v)| v)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let p20 = mean_in(10.0, 20.0);
        let p80 = mean_in(60.0, 120.0);
        let p5 = mean_in(150.0, 178.0);
        assert!(p80 > p20, "p80={p80} p20={p20}");
        assert!(p20 > p5, "p20={p20} p5={p5}");
    }

    #[test]
    fn fig9_overhead_respects_the_target_in_steady_state() {
        let out = run_fig9(Scale::Quick);
        assert!(
            (out.steady_mean_deg_pct - out.target_pct).abs() < 12.0,
            "steady overhead {} vs target {}",
            out.steady_mean_deg_pct,
            out.target_pct
        );
    }

    #[test]
    fn fig10_slowdown_lands_near_the_target() {
        let out = run_fig10(Scale::Quick);
        let slowdown = out.slowdown_pct();
        assert!(
            (15.0..50.0).contains(&slowdown),
            "slowdown {slowdown} should be near the 30 % target (paper: 33.6 %)"
        );
    }
}
