//! The executed-data-plane throughput benchmark (`repro datapath`).
//!
//! Unlike every other experiment — which reports *virtual* durations from
//! the calibrated [`CostModel`] — this one measures **real wall-clock
//! time** of the zero-copy checkpoint data plane doing real work on
//! materialized 4 KiB pages: harvest (chunk-ordered parallel collect) →
//! translate (vCPU blobs to the common format) → encode (per-lane
//! page-data records with streaming checksums into pooled buffers) →
//! decode + restore (segmented zero-copy decode installing into a
//! replica).
//!
//! Two calibration probes ride along:
//!
//! * **measured α** — nanoseconds per page through the single-lane encode
//!   path, next to the cost model's analytic `checkpoint_cpu_per_page`;
//! * **measured parallelism** — single-lane wall time over `w`-lane wall
//!   time, next to the analytic `1 + (w−1)·parallel_efficiency`. On a
//!   host with fewer cores than lanes the measured curve flattens at the
//!   core count; `host_cpus` is reported so readers can tell scheduler
//!   limits from algorithmic ones.
//!
//! A **legacy reference** pins the serial baseline this PR replaced:
//! per-page heap boxes, a per-record scratch copy, and the byte-serial
//! FNV checksum over the gathered payload. The new path's speedup over it
//! is host-independent (same core count for both).

use std::time::Instant;

use here_core::dataplane::{
    decode_and_restore, encode_pages_parallel, translate_vcpus_parallel, BufferPool, PayloadMode,
};
use here_core::transfer::{collect_chunked_into, CollectScratch};
use here_core::CostModel;
use here_hypervisor::arch::ArchRegs;
use here_hypervisor::dirty::DirtyBitmap;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::memory::{materialize_content, GuestMemory};
use here_hypervisor::vcpu::{VcpuId, VcpuStateBlob, XenVcpuState};
use here_hypervisor::PAGE_SIZE;
use here_sim_core::rate::ByteSize;
use here_vmstate::translate::StateTranslator;
use here_vmstate::wire::{fnv32, ScatterStream, StreamEncoder};
use here_vmstate::MemoryDelta;

use super::Scale;

/// Lane counts swept by the benchmark.
pub const WORKER_SWEEP: &[u32] = &[1, 2, 4, 8];

/// One row of the sweep: wall-clock milliseconds per stage at a lane
/// count, averaged over the measured rounds.
#[derive(Debug, Clone, Copy)]
pub struct WorkerRow {
    /// Harvest/encode/translate lane count.
    pub workers: u32,
    /// Parallel dirty-page collect (chunk-ordered merge included).
    pub harvest_ms: f64,
    /// vCPU blob translation to the common format.
    pub translate_ms: f64,
    /// Materialize + checksum + frame page payloads into pooled lanes.
    pub encode_ms: f64,
    /// Segmented decode and page install on the replica.
    pub decode_restore_ms: f64,
    /// End-to-end datapath wall time.
    pub total_ms: f64,
    /// Materialized payload moved per wall second.
    pub throughput_mib_per_s: f64,
    /// Single-lane total over this row's total.
    pub measured_parallelism: f64,
    /// The cost model's `1 + (w−1)·parallel_efficiency`.
    pub analytic_parallelism: f64,
}

/// Everything `repro datapath` reports.
#[derive(Debug, Clone)]
pub struct DatapathOutput {
    /// Cores the host scheduler actually has — the ceiling on measured
    /// parallelism, recorded so flat scaling curves are attributable.
    pub host_cpus: usize,
    /// Dirty pages per round.
    pub pages: u64,
    /// Measured rounds per lane count (after one warmup).
    pub rounds: u32,
    /// vCPU blobs translated per round.
    pub vcpus: u32,
    /// One row per entry in [`WORKER_SWEEP`].
    pub rows: Vec<WorkerRow>,
    /// Measured single-lane encode cost per page, in microseconds.
    pub measured_alpha_us_per_page: f64,
    /// The cost model's `checkpoint_cpu_per_page`, in microseconds.
    pub analytic_alpha_us_per_page: f64,
    /// The cost model's marginal lane efficiency.
    pub analytic_parallel_efficiency: f64,
    /// Single-threaded legacy-path encode (boxes + scratch copy +
    /// byte-serial FNV), milliseconds.
    pub legacy_encode_ms: f64,
    /// Legacy encode time over the new path's single-lane encode time.
    pub legacy_speedup: f64,
    /// The same results as a JSON document (`BENCH_datapath.json`).
    pub json: String,
}

fn scale_params(scale: Scale) -> (u64, u32, u32) {
    // (dirty pages, rounds, vcpus)
    match scale {
        Scale::Paper => (32_768, 5, 8),
        Scale::Quick => (4_096, 3, 4),
    }
}

/// Builds a guest with a deterministic dirty working set: every third
/// frame written once, round-robin across vCPUs so `last_writer` varies.
fn dirty_guest(pages: u64, vcpus: u32) -> (GuestMemory, DirtyBitmap) {
    let frames = pages * 3;
    let mut memory = GuestMemory::new(ByteSize::from_bytes(
        frames.next_multiple_of(256) * PAGE_SIZE,
    ))
    .expect("bench guest size is valid");
    let mut dirty = DirtyBitmap::new(memory.num_pages());
    for i in 0..pages {
        let frame = here_hypervisor::PageId::new(i * 3);
        memory
            .write_page(frame, VcpuId::new((i % vcpus as u64) as u32))
            .expect("frame is in range");
        dirty.mark(frame);
    }
    (memory, dirty)
}

fn vcpu_blobs(vcpus: u32) -> Vec<VcpuStateBlob> {
    (0..vcpus)
        .map(|i| {
            let mut regs = ArchRegs::reset_state();
            regs.tsc = u64::from(i) * 997;
            VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, true))
        })
        .collect()
}

/// The serial baseline this PR replaced: one heap box per materialized
/// page, a per-record scratch buffer copied into the output, and the
/// byte-serial FNV checksum over the whole gathered payload.
fn legacy_encode_reference(delta: &MemoryDelta) -> (Vec<u8>, u32) {
    let mut scratch: Vec<u8> = Vec::new();
    for &(page, rec) in delta.entries() {
        let content = materialize_content(page, rec);
        scratch.extend_from_slice(&page.frame().to_be_bytes());
        scratch.extend_from_slice(&rec.version.to_be_bytes());
        scratch.extend_from_slice(&rec.last_writer.to_be_bytes());
        scratch.extend_from_slice(&content[..]);
    }
    let sum = fnv32(&scratch);
    let mut out = Vec::with_capacity(scratch.len() + 9);
    out.push(0x08);
    out.extend_from_slice(&(scratch.len() as u32).to_be_bytes());
    out.extend_from_slice(&sum.to_be_bytes());
    out.extend_from_slice(&scratch);
    (out, sum)
}

fn splice(pool_segments: Vec<bytes::Bytes>) -> ScatterStream {
    let mut stream = ScatterStream::from(StreamEncoder::new().finish());
    for seg in pool_segments {
        stream.push(seg);
    }
    stream
}

/// Runs the datapath sweep and returns measured rows plus the JSON
/// document. Real wall-clock timing — results vary with the host.
pub fn run_datapath(scale: Scale) -> DatapathOutput {
    let (pages, rounds, vcpus) = scale_params(scale);
    let costs = CostModel::default();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (memory, dirty) = dirty_guest(pages, vcpus);
    let blobs = vcpu_blobs(vcpus);
    let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm)
        .expect("Xen->KVM translator exists");
    let payload_mib = (pages * PAGE_SIZE) as f64 / (1024.0 * 1024.0);

    let mut rows: Vec<WorkerRow> = Vec::new();
    for &workers in WORKER_SWEEP {
        let mut scratch = CollectScratch::new();
        let mut delta = MemoryDelta::new();
        let mut pool = BufferPool::new();
        let mut replica = GuestMemory::new(memory.size()).expect("replica size is valid");
        let (mut harvest, mut translate, mut encode, mut decode) = (0f64, 0f64, 0f64, 0f64);
        // One warmup round fills the pools; measured rounds then run at
        // steady state.
        for round in 0..=rounds {
            let measured = round > 0;

            let t = Instant::now();
            delta.clear();
            collect_chunked_into(&memory, &dirty, workers, &mut scratch, &mut delta);
            if measured {
                harvest += t.elapsed().as_secs_f64();
            }
            assert_eq!(delta.len() as u64, pages, "harvest must see every page");

            let t = Instant::now();
            let cirs = translate_vcpus_parallel(&blobs, Some(&translator), workers)
                .expect("bench blobs translate");
            if measured {
                translate += t.elapsed().as_secs_f64();
            }
            assert_eq!(cirs.len(), blobs.len());

            let t = Instant::now();
            let segments =
                encode_pages_parallel(&delta, workers, PayloadMode::Materialized, &mut pool);
            let stream = splice(segments);
            if measured {
                encode += t.elapsed().as_secs_f64();
            }

            let t = Instant::now();
            let installed = decode_and_restore(stream.clone(), &mut replica, false)
                .expect("bench stream decodes");
            if measured {
                decode += t.elapsed().as_secs_f64();
            }
            assert_eq!(installed, pages, "restore must install every page");
            for seg in stream.into_segments() {
                pool.recycle(seg);
            }
        }
        let n = rounds as f64;
        let (harvest, translate, encode, decode) =
            (harvest / n, translate / n, encode / n, decode / n);
        let total = harvest + translate + encode + decode;
        rows.push(WorkerRow {
            workers,
            harvest_ms: harvest * 1e3,
            translate_ms: translate * 1e3,
            encode_ms: encode * 1e3,
            decode_restore_ms: decode * 1e3,
            total_ms: total * 1e3,
            throughput_mib_per_s: payload_mib / total,
            measured_parallelism: 1.0, // filled below from the lane-1 row
            analytic_parallelism: costs.effective_parallelism(workers),
        });
    }
    let base_total = rows[0].total_ms;
    for row in &mut rows {
        row.measured_parallelism = base_total / row.total_ms;
    }

    // Legacy serial reference over the same delta.
    let mut scratch = CollectScratch::new();
    let mut delta = MemoryDelta::new();
    collect_chunked_into(&memory, &dirty, 1, &mut scratch, &mut delta);
    let mut legacy = 0f64;
    for round in 0..=rounds {
        let t = Instant::now();
        let (encoded, _) = legacy_encode_reference(&delta);
        if round > 0 {
            legacy += t.elapsed().as_secs_f64();
        }
        assert!(!encoded.is_empty());
    }
    let legacy_encode_ms = legacy / rounds as f64 * 1e3;
    let new_single_encode_ms = rows[0].encode_ms;
    let legacy_speedup = legacy_encode_ms / new_single_encode_ms;
    let measured_alpha_us_per_page = rows[0].encode_ms * 1e3 / pages as f64;
    let analytic_alpha_us_per_page = costs.checkpoint_cpu_per_page.as_secs_f64() * 1e6;

    let json = render_json(
        host_cpus,
        pages,
        rounds,
        vcpus,
        payload_mib,
        &rows,
        measured_alpha_us_per_page,
        analytic_alpha_us_per_page,
        costs.parallel_efficiency,
        legacy_encode_ms,
        legacy_speedup,
    );
    DatapathOutput {
        host_cpus,
        pages,
        rounds,
        vcpus,
        rows,
        measured_alpha_us_per_page,
        analytic_alpha_us_per_page,
        analytic_parallel_efficiency: costs.parallel_efficiency,
        legacy_encode_ms,
        legacy_speedup,
        json,
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    host_cpus: usize,
    pages: u64,
    rounds: u32,
    vcpus: u32,
    payload_mib: f64,
    rows: &[WorkerRow],
    measured_alpha: f64,
    analytic_alpha: f64,
    efficiency: f64,
    legacy_encode_ms: f64,
    legacy_speedup: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"datapath\",\n");
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!("  \"pages\": {pages},\n"));
    out.push_str(&format!("  \"payload_mib\": {payload_mib:.1},\n"));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str(&format!("  \"vcpus\": {vcpus},\n"));
    out.push_str("  \"workers\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"harvest_ms\": {:.3}, \"translate_ms\": {:.4}, \
             \"encode_ms\": {:.3}, \"decode_restore_ms\": {:.3}, \"total_ms\": {:.3}, \
             \"throughput_mib_per_s\": {:.1}, \"measured_parallelism\": {:.3}, \
             \"analytic_parallelism\": {:.3}}}{}\n",
            r.workers,
            r.harvest_ms,
            r.translate_ms,
            r.encode_ms,
            r.decode_restore_ms,
            r.total_ms,
            r.throughput_mib_per_s,
            r.measured_parallelism,
            r.analytic_parallelism,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"measured_alpha_us_per_page\": {measured_alpha:.4},\n"
    ));
    out.push_str(&format!(
        "  \"analytic_alpha_us_per_page\": {analytic_alpha:.4},\n"
    ));
    out.push_str(&format!(
        "  \"analytic_parallel_efficiency\": {efficiency:.2},\n"
    ));
    out.push_str(&format!(
        "  \"legacy_reference\": {{\"encode_ms\": {legacy_encode_ms:.3}, \
         \"speedup_vs_legacy\": {legacy_speedup:.2}}}\n"
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_consistent_rows() {
        let out = run_datapath(Scale::Quick);
        assert_eq!(out.rows.len(), WORKER_SWEEP.len());
        assert!(out.rows.iter().all(|r| r.total_ms > 0.0));
        assert!(out.rows.iter().all(|r| r.throughput_mib_per_s > 0.0));
        assert!((out.rows[0].measured_parallelism - 1.0).abs() < 1e-9);
        assert!(out.legacy_speedup > 0.0);
        assert!(out.json.contains("\"host_cpus\""));
        assert!(out.json.contains("\"speedup_vs_legacy\""));
    }

    #[test]
    fn legacy_reference_covers_the_same_payload() {
        let (memory, dirty) = dirty_guest(512, 2);
        let mut scratch = CollectScratch::new();
        let mut delta = MemoryDelta::new();
        collect_chunked_into(&memory, &dirty, 1, &mut scratch, &mut delta);
        let (encoded, _) = legacy_encode_reference(&delta);
        // frame header + per-page (14 meta + 4096 content)
        assert_eq!(encoded.len(), 9 + 512 * (14 + 4096));
    }
}
