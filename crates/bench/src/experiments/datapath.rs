//! The executed-data-plane throughput benchmark (`repro datapath`).
//!
//! Unlike every other experiment — which reports *virtual* durations from
//! the calibrated [`CostModel`] — this one measures **real wall-clock
//! time** of the zero-copy checkpoint data plane doing real work on
//! materialized 4 KiB pages: harvest (chunk-ordered parallel collect) →
//! translate (vCPU blobs to the common format) → encode (per-lane
//! page-data records with streaming checksums into pooled buffers) →
//! decode + restore (segmented zero-copy decode installing into a
//! replica).
//!
//! Two encode paths are timed side by side:
//!
//! * **barrier** (`encode_ms` + `decode_restore_ms`) — the spliced path:
//!   every lane shard completes before the replica sees a byte;
//! * **streamed** (`streamed_ms`) — the pipelined path: pages split into
//!   chunks on the work-stealing lane pool, each completed chunk handed
//!   through the bounded overlap window and decoded into the replica
//!   *while later chunks are still encoding*. The row's `total_ms` uses
//!   the streamed figure, because that is what an epoch actually pays.
//!
//! Per-row `steals` and `occupancy_pct` expose the pool's behaviour
//! (they are host-dependent diagnostics, ignored by the gate).
//!
//! Two calibration probes ride along:
//!
//! * **measured α** — nanoseconds per page through the single-lane encode
//!   path, next to the cost model's analytic `checkpoint_cpu_per_page`;
//! * **measured parallelism** — single-lane wall time over `w`-lane wall
//!   time, next to the analytic `1 + (w−1)·parallel_efficiency`. On a
//!   host with fewer cores than lanes the measured curve flattens at the
//!   core count; `host_cpus` is reported so readers can tell scheduler
//!   limits from algorithmic ones.
//!
//! A **legacy reference** pins the serial baseline an earlier PR
//! replaced: per-page heap boxes, a per-record scratch copy, and the
//! byte-serial FNV checksum over the gathered payload. The new path's
//! speedup over it is host-independent (same core count for both).
//!
//! A **virtual_overlap** section closes the loop with the simulated
//! pipeline: two deterministic scenarios (phased memory load and a KV
//! store) run with the encode/transfer overlap knob off and on, and the
//! section reports the virtual-time pause reduction. Those numbers are
//! exact on every host — they gate byte-for-byte even on one CPU.

use std::time::Instant;

use here_core::dataplane::{
    decode_and_restore, encode_pages_parallel, encode_pages_round, translate_vcpus_parallel,
    BufferPool, EncodePlan, LanePool, PayloadMode, SegmentRestorer, DEFAULT_CHUNK_PAGES,
};
use here_core::transfer::{collect_chunked_into, CollectScratch};
use here_core::{CostModel, ReplicationConfig, Scenario};
use here_hypervisor::arch::ArchRegs;
use here_hypervisor::dirty::DirtyBitmap;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::memory::{materialize_content, GuestMemory};
use here_hypervisor::vcpu::{VcpuId, VcpuStateBlob, XenVcpuState};
use here_hypervisor::PAGE_SIZE;
use here_sim_core::rate::ByteSize;
use here_sim_core::time::{SimDuration, SimTime};
use here_vmstate::translate::StateTranslator;
use here_vmstate::wire::{fnv32, ScatterStream, StreamEncoder, VERSION_V3};
use here_vmstate::MemoryDelta;
use here_workloads::phased::{Phase, PhasedMemStress};
use here_workloads::traits::Workload;
use here_workloads::ycsb::{Ycsb, YcsbMix, YcsbSpec};

use super::Scale;

/// Lane counts swept by the benchmark.
pub const WORKER_SWEEP: &[u32] = &[1, 2, 4, 8];

/// Bounded overlap-window depth (in chunks) used by the streamed rows.
pub const OVERLAP_WINDOW: u32 = 4;

/// Chunk size (pages) the virtual-overlap scenarios configure, small
/// enough that every epoch has many chunks to hide wire time under.
const OVERLAP_CHUNK_PAGES: u32 = 64;

/// Optional overrides for the sweep (`repro datapath --lanes N
/// --chunk-pages P`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DatapathOptions {
    /// Replace the default 1/2/4/8 sweep with `[1, lanes]`.
    pub lanes: Option<u32>,
    /// Chunk size (pages) for the streamed encode rows; default
    /// [`DEFAULT_CHUNK_PAGES`].
    pub chunk_pages: Option<u32>,
}

/// One row of the sweep: wall-clock milliseconds per stage at a lane
/// count, averaged over the measured rounds.
#[derive(Debug, Clone, Copy)]
pub struct WorkerRow {
    /// Harvest/encode/translate lane count.
    pub workers: u32,
    /// Parallel dirty-page collect (chunk-ordered merge included).
    pub harvest_ms: f64,
    /// vCPU blob translation to the common format.
    pub translate_ms: f64,
    /// Barrier encode: materialize + checksum + frame page payloads into
    /// pooled lanes, all shards complete before decode starts.
    pub encode_ms: f64,
    /// Segmented decode and page install on the replica (after the
    /// barrier encode).
    pub decode_restore_ms: f64,
    /// Pipelined encode→decode: chunked work-stealing encode with each
    /// finished chunk decoded into the replica while later chunks are
    /// still encoding.
    pub streamed_ms: f64,
    /// Wire-v3 columnar meta encode: the page-columns records a v3
    /// session ships per epoch (all metas contiguous, then the payload
    /// column), framed on the same lanes.
    pub v3_meta_ms: f64,
    /// Chunks executed by a lane other than their home lane during the
    /// streamed rounds (work-stealing diagnostic; host-dependent).
    pub steals: u64,
    /// Mean lane occupancy of the streamed rounds: busy time over
    /// `lanes × round wall`, percent (host-dependent).
    pub occupancy_pct: f64,
    /// End-to-end datapath wall time: harvest + translate + streamed.
    pub total_ms: f64,
    /// Materialized payload moved per wall second (over `total_ms`).
    pub throughput_mib_per_s: f64,
    /// Single-lane total over this row's total.
    pub measured_parallelism: f64,
    /// The cost model's `1 + (w−1)·parallel_efficiency`.
    pub analytic_parallelism: f64,
}

/// One workload's barrier-vs-overlap comparison in *virtual* time:
/// the same deterministic scenario run with the encode/transfer overlap
/// knob off and on.
#[derive(Debug, Clone)]
pub struct OverlapScenario {
    /// Workload label (`phased`, `kv`).
    pub workload: &'static str,
    /// Checkpoints observed (identical in both runs).
    pub checkpoints: u64,
    /// Mean virtual pause per checkpoint, overlap off, milliseconds.
    pub pause_ms_barrier: f64,
    /// Mean virtual pause per checkpoint, overlap on, milliseconds.
    pub pause_ms_overlap: f64,
    /// Pause reduction from the overlap, percent.
    pub reduction_pct: f64,
}

/// Everything `repro datapath` reports.
#[derive(Debug, Clone)]
pub struct DatapathOutput {
    /// Cores the host scheduler actually has — the ceiling on measured
    /// parallelism, recorded so flat scaling curves are attributable.
    pub host_cpus: usize,
    /// Dirty pages per round.
    pub pages: u64,
    /// Measured rounds per lane count (after one warmup).
    pub rounds: u32,
    /// vCPU blobs translated per round.
    pub vcpus: u32,
    /// Chunk size (pages) the streamed rows used.
    pub chunk_pages: u32,
    /// One row per swept lane count.
    pub rows: Vec<WorkerRow>,
    /// Measured single-lane encode cost per page, in microseconds.
    pub measured_alpha_us_per_page: f64,
    /// The cost model's `checkpoint_cpu_per_page`, in microseconds.
    pub analytic_alpha_us_per_page: f64,
    /// The cost model's marginal lane efficiency.
    pub analytic_parallel_efficiency: f64,
    /// Single-threaded legacy-path encode (boxes + scratch copy +
    /// byte-serial FNV), milliseconds.
    pub legacy_encode_ms: f64,
    /// Legacy encode time over the new path's single-lane encode time.
    pub legacy_speedup: f64,
    /// Encoded size of the delta as v2 metadata records (single lane),
    /// bytes — deterministic, gated exactly.
    pub v2_meta_bytes: u64,
    /// Encoded size of the same delta as v3 page-columns records
    /// (single lane), bytes — deterministic, gated exactly.
    pub v3_columns_bytes: u64,
    /// `v2_meta_bytes / v3_columns_bytes` — the columnar density win.
    pub v3_meta_reduction: f64,
    /// Deterministic virtual-time overlap comparisons.
    pub virtual_overlap: Vec<OverlapScenario>,
    /// The same results as a JSON document (`BENCH_datapath.json`).
    pub json: String,
}

fn scale_params(scale: Scale) -> (u64, u32, u32) {
    // (dirty pages, rounds, vcpus)
    match scale {
        Scale::Paper => (32_768, 5, 8),
        Scale::Quick => (4_096, 3, 4),
    }
}

/// Builds a guest with a deterministic dirty working set: every third
/// frame written once, round-robin across vCPUs so `last_writer` varies.
fn dirty_guest(pages: u64, vcpus: u32) -> (GuestMemory, DirtyBitmap) {
    let frames = pages * 3;
    let mut memory = GuestMemory::new(ByteSize::from_bytes(
        frames.next_multiple_of(256) * PAGE_SIZE,
    ))
    .expect("bench guest size is valid");
    let mut dirty = DirtyBitmap::new(memory.num_pages());
    for i in 0..pages {
        let frame = here_hypervisor::PageId::new(i * 3);
        memory
            .write_page(frame, VcpuId::new((i % vcpus as u64) as u32))
            .expect("frame is in range");
        dirty.mark(frame);
    }
    (memory, dirty)
}

fn vcpu_blobs(vcpus: u32) -> Vec<VcpuStateBlob> {
    (0..vcpus)
        .map(|i| {
            let mut regs = ArchRegs::reset_state();
            regs.tsc = u64::from(i) * 997;
            VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, true))
        })
        .collect()
}

/// The serial baseline this PR replaced: one heap box per materialized
/// page, a per-record scratch buffer copied into the output, and the
/// byte-serial FNV checksum over the whole gathered payload.
fn legacy_encode_reference(delta: &MemoryDelta) -> (Vec<u8>, u32) {
    let mut scratch: Vec<u8> = Vec::new();
    for &(page, rec) in delta.entries() {
        let content = materialize_content(page, rec);
        scratch.extend_from_slice(&page.frame().to_be_bytes());
        scratch.extend_from_slice(&rec.version.to_be_bytes());
        scratch.extend_from_slice(&rec.last_writer.to_be_bytes());
        scratch.extend_from_slice(&content[..]);
    }
    let sum = fnv32(&scratch);
    let mut out = Vec::with_capacity(scratch.len() + 9);
    out.push(0x08);
    out.extend_from_slice(&(scratch.len() as u32).to_be_bytes());
    out.extend_from_slice(&sum.to_be_bytes());
    out.extend_from_slice(&scratch);
    (out, sum)
}

fn splice(pool_segments: Vec<bytes::Bytes>) -> ScatterStream {
    let mut stream = ScatterStream::from(StreamEncoder::new().finish());
    for seg in pool_segments {
        stream.push(seg);
    }
    stream
}

/// Runs the datapath sweep with the default options.
pub fn run_datapath(scale: Scale) -> DatapathOutput {
    run_datapath_with(scale, DatapathOptions::default())
}

/// Runs the datapath sweep and returns measured rows plus the JSON
/// document. Wall-clock rows vary with the host; the `virtual_overlap`
/// section is deterministic everywhere.
pub fn run_datapath_with(scale: Scale, opts: DatapathOptions) -> DatapathOutput {
    let (pages, rounds, vcpus) = scale_params(scale);
    let costs = CostModel::default();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let chunk_pages = opts.chunk_pages.unwrap_or(DEFAULT_CHUNK_PAGES).max(1);
    let sweep: Vec<u32> = match opts.lanes {
        Some(lanes) if lanes > 1 => vec![1, lanes],
        Some(_) => vec![1],
        None => WORKER_SWEEP.to_vec(),
    };
    let (memory, dirty) = dirty_guest(pages, vcpus);
    let blobs = vcpu_blobs(vcpus);
    let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm)
        .expect("Xen->KVM translator exists");
    let payload_mib = (pages * PAGE_SIZE) as f64 / (1024.0 * 1024.0);

    // One persistent lane pool for the whole sweep: the rows exercise
    // the same warm workers an epoch loop would.
    let lane_pool = LanePool::new();
    let mut rows: Vec<WorkerRow> = Vec::new();
    for &workers in &sweep {
        let mut scratch = CollectScratch::new();
        let mut delta = MemoryDelta::new();
        let mut pool = BufferPool::new();
        let mut replica = GuestMemory::new(memory.size()).expect("replica size is valid");
        let mut replica_streamed = GuestMemory::new(memory.size()).expect("replica size is valid");
        let mut replica_v3 = GuestMemory::new(memory.size()).expect("replica size is valid");
        let (mut harvest, mut translate, mut encode, mut decode, mut streamed, mut v3_meta) =
            (0f64, 0f64, 0f64, 0f64, 0f64, 0f64);
        let (mut steals, mut occupancy) = (0u64, 0f64);
        // One warmup round fills the pools; measured rounds then run at
        // steady state.
        for round in 0..=rounds {
            let measured = round > 0;

            let t = Instant::now();
            delta.clear();
            collect_chunked_into(&memory, &dirty, workers, &mut scratch, &mut delta);
            if measured {
                harvest += t.elapsed().as_secs_f64();
            }
            assert_eq!(delta.len() as u64, pages, "harvest must see every page");

            let t = Instant::now();
            let cirs = translate_vcpus_parallel(&blobs, Some(&translator), workers)
                .expect("bench blobs translate");
            if measured {
                translate += t.elapsed().as_secs_f64();
            }
            assert_eq!(cirs.len(), blobs.len());

            // Barrier path: splice every lane shard, then decode.
            let t = Instant::now();
            let segments = encode_pages_parallel(
                &delta,
                workers,
                PayloadMode::Materialized,
                &mut pool,
                &lane_pool,
            );
            let stream = splice(segments);
            if measured {
                encode += t.elapsed().as_secs_f64();
            }

            let t = Instant::now();
            let installed = decode_and_restore(stream.clone(), &mut replica, false)
                .expect("bench stream decodes");
            if measured {
                decode += t.elapsed().as_secs_f64();
            }
            assert_eq!(installed, pages, "restore must install every page");
            for seg in stream.into_segments() {
                pool.recycle(seg);
            }

            // Streamed path: chunked work-stealing encode, each finished
            // chunk decoded into the replica through the bounded window
            // while later chunks are still encoding.
            let plan = EncodePlan {
                lanes: workers,
                mode: PayloadMode::Materialized,
                chunk_pages: Some(chunk_pages),
                window: Some(OVERLAP_WINDOW),
            };
            let t = Instant::now();
            let mut restorer = SegmentRestorer::new(&mut replica_streamed, false);
            let mut spent: Vec<bytes::Bytes> = Vec::new();
            let (_walls, stats) =
                encode_pages_round(&delta, &plan, &mut pool, &lane_pool, |_, seg| {
                    restorer.accept(&seg).expect("streamed segment decodes");
                    spent.push(seg);
                });
            let installed = restorer.installed();
            if measured {
                streamed += t.elapsed().as_secs_f64();
                steals += stats.steals();
                occupancy += stats.occupancy_pct();
            }
            assert_eq!(installed, pages, "streamed restore must install every page");
            for seg in spent {
                pool.recycle(seg);
            }

            // Wire-v3 columnar path: the meta-only page-columns records a
            // v3 session ships per epoch, decoded through a v3 restorer.
            let t = Instant::now();
            let segments = encode_pages_parallel(
                &delta,
                workers,
                PayloadMode::Columnar { base_epoch: 0 },
                &mut pool,
                &lane_pool,
            );
            if measured {
                v3_meta += t.elapsed().as_secs_f64();
            }
            let mut restorer = SegmentRestorer::new_versioned(&mut replica_v3, false, VERSION_V3);
            for seg in &segments {
                restorer.accept(seg).expect("v3 columnar segment decodes");
            }
            assert_eq!(
                restorer.installed(),
                pages,
                "v3 restore must install every page"
            );
            for seg in segments {
                pool.recycle(seg);
            }
        }
        let n = rounds as f64;
        let (harvest, translate, encode, decode, streamed, v3_meta) = (
            harvest / n,
            translate / n,
            encode / n,
            decode / n,
            streamed / n,
            v3_meta / n,
        );
        let total = harvest + translate + streamed;
        rows.push(WorkerRow {
            workers,
            harvest_ms: harvest * 1e3,
            translate_ms: translate * 1e3,
            encode_ms: encode * 1e3,
            decode_restore_ms: decode * 1e3,
            streamed_ms: streamed * 1e3,
            v3_meta_ms: v3_meta * 1e3,
            steals,
            occupancy_pct: occupancy / n,
            total_ms: total * 1e3,
            throughput_mib_per_s: payload_mib / total,
            measured_parallelism: 1.0, // filled below from the lane-1 row
            analytic_parallelism: costs.effective_parallelism(workers),
        });
    }
    let base_total = rows[0].total_ms;
    for row in &mut rows {
        row.measured_parallelism = base_total / row.total_ms;
    }

    // Legacy serial reference over the same delta.
    let mut scratch = CollectScratch::new();
    let mut delta = MemoryDelta::new();
    collect_chunked_into(&memory, &dirty, 1, &mut scratch, &mut delta);
    let mut legacy = 0f64;
    for round in 0..=rounds {
        let t = Instant::now();
        let (encoded, _) = legacy_encode_reference(&delta);
        if round > 0 {
            legacy += t.elapsed().as_secs_f64();
        }
        assert!(!encoded.is_empty());
    }
    let legacy_encode_ms = legacy / rounds as f64 * 1e3;
    let new_single_encode_ms = rows[0].encode_ms;
    let legacy_speedup = legacy_encode_ms / new_single_encode_ms;

    // Deterministic wire-density probe over the same delta: the v2
    // metadata stream vs the v3 page-columns stream, single lane so the
    // chunk framing is identical on every host.
    let mut pool = BufferPool::new();
    let mut encoded_bytes = |mode| {
        let segments = encode_pages_parallel(&delta, 1, mode, &mut pool, &lane_pool);
        let total: u64 = segments.iter().map(|s| s.len() as u64).sum();
        for seg in segments {
            pool.recycle(seg);
        }
        total
    };
    let v2_meta_bytes = encoded_bytes(PayloadMode::Metadata);
    let v3_columns_bytes = encoded_bytes(PayloadMode::Columnar { base_epoch: 0 });
    let v3_meta_reduction = v2_meta_bytes as f64 / v3_columns_bytes.max(1) as f64;
    let measured_alpha_us_per_page = rows[0].encode_ms * 1e3 / pages as f64;
    let analytic_alpha_us_per_page = costs.checkpoint_cpu_per_page.as_secs_f64() * 1e6;

    let virtual_overlap = run_virtual_overlap();

    let json = render_json(
        host_cpus,
        pages,
        rounds,
        vcpus,
        chunk_pages,
        payload_mib,
        &rows,
        measured_alpha_us_per_page,
        analytic_alpha_us_per_page,
        costs.parallel_efficiency,
        legacy_encode_ms,
        legacy_speedup,
        v2_meta_bytes,
        v3_columns_bytes,
        v3_meta_reduction,
        &virtual_overlap,
    );
    DatapathOutput {
        host_cpus,
        pages,
        rounds,
        vcpus,
        chunk_pages,
        rows,
        measured_alpha_us_per_page,
        analytic_alpha_us_per_page,
        analytic_parallel_efficiency: costs.parallel_efficiency,
        legacy_encode_ms,
        legacy_speedup,
        v2_meta_bytes,
        v3_columns_bytes,
        v3_meta_reduction,
        virtual_overlap,
        json,
    }
}

/// A short phased load: a light first phase, then a heavy one, so the
/// overlap credit is exercised across different dirty-set sizes.
fn overlap_phased_workload() -> (Box<dyn Workload>, u64) {
    let phases = vec![
        Phase {
            at: SimTime::ZERO,
            percent: 20,
        },
        Phase {
            at: SimTime::from_secs(8),
            percent: 70,
        },
    ];
    let workload = PhasedMemStress::new(phases).expect("overlap schedule is valid");
    (Box::new(workload), 256)
}

fn overlap_kv_workload() -> (Box<dyn Workload>, u64) {
    let driver = Ycsb::new(YcsbSpec::small(YcsbMix::A)).expect("small KV spec is valid");
    let mem_mib = (driver.required_pages() * PAGE_SIZE).div_ceil(1024 * 1024) + 64;
    (Box::new(driver), mem_mib)
}

/// Runs one deterministic scenario with the encode/transfer overlap knob
/// off and on; everything else (workload, seed, period, chunking) is
/// identical, so the pause delta is exactly the overlap credit.
fn overlap_compare(
    label: &'static str,
    make_workload: fn() -> (Box<dyn Workload>, u64),
) -> OverlapScenario {
    let run = |overlap: bool| {
        let mut cfg = ReplicationConfig::fixed_period(SimDuration::from_secs(2))
            .with_encode_chunk_pages(OVERLAP_CHUNK_PAGES);
        if overlap {
            cfg = cfg.with_overlap_transfer();
        }
        let (workload, memory_mib) = make_workload();
        Scenario::builder()
            .name(format!("overlap-{label}"))
            .vm_memory_mib(memory_mib)
            .vcpus(4)
            .workload(workload)
            .config(cfg)
            .duration(SimDuration::from_secs(20))
            .build()
            .expect("overlap scenario is valid")
            .run()
    };
    let barrier = run(false);
    let overlap = run(true);
    // Shorter pauses let the overlap run fit extra epochs into the same
    // virtual budget, so pair only the epochs both runs executed.
    let paired = barrier.checkpoints.len().min(overlap.checkpoints.len());
    let mean_pause_ms = |report: &here_core::RunReport| {
        report
            .checkpoints
            .iter()
            .take(paired)
            .map(|c| c.pause.as_secs_f64() * 1e3)
            .sum::<f64>()
            / paired.max(1) as f64
    };
    let pause_ms_barrier = mean_pause_ms(&barrier);
    let pause_ms_overlap = mean_pause_ms(&overlap);
    OverlapScenario {
        workload: label,
        checkpoints: paired as u64,
        pause_ms_barrier,
        pause_ms_overlap,
        reduction_pct: (pause_ms_barrier - pause_ms_overlap) / pause_ms_barrier * 100.0,
    }
}

/// The deterministic virtual-time overlap comparisons: identical on
/// every host, gated exactly.
fn run_virtual_overlap() -> Vec<OverlapScenario> {
    vec![
        overlap_compare("phased", overlap_phased_workload),
        overlap_compare("kv", overlap_kv_workload),
    ]
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    host_cpus: usize,
    pages: u64,
    rounds: u32,
    vcpus: u32,
    chunk_pages: u32,
    payload_mib: f64,
    rows: &[WorkerRow],
    measured_alpha: f64,
    analytic_alpha: f64,
    efficiency: f64,
    legacy_encode_ms: f64,
    legacy_speedup: f64,
    v2_meta_bytes: u64,
    v3_columns_bytes: u64,
    v3_meta_reduction: f64,
    virtual_overlap: &[OverlapScenario],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"datapath\",\n");
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!("  \"pages\": {pages},\n"));
    out.push_str(&format!("  \"payload_mib\": {payload_mib:.1},\n"));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str(&format!("  \"vcpus\": {vcpus},\n"));
    out.push_str(&format!("  \"chunk_pages\": {chunk_pages},\n"));
    out.push_str("  \"workers\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"harvest_ms\": {:.3}, \"translate_ms\": {:.4}, \
             \"encode_ms\": {:.3}, \"decode_restore_ms\": {:.3}, \"streamed_ms\": {:.3}, \
             \"v3_meta_ms\": {:.3}, \
             \"steals\": {}, \"occupancy_pct\": {:.1}, \"total_ms\": {:.3}, \
             \"throughput_mib_per_s\": {:.1}, \"measured_parallelism\": {:.3}, \
             \"analytic_parallelism\": {:.3}}}{}\n",
            r.workers,
            r.harvest_ms,
            r.translate_ms,
            r.encode_ms,
            r.decode_restore_ms,
            r.streamed_ms,
            r.v3_meta_ms,
            r.steals,
            r.occupancy_pct,
            r.total_ms,
            r.throughput_mib_per_s,
            r.measured_parallelism,
            r.analytic_parallelism,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"measured_alpha_us_per_page\": {measured_alpha:.4},\n"
    ));
    out.push_str(&format!(
        "  \"analytic_alpha_us_per_page\": {analytic_alpha:.4},\n"
    ));
    out.push_str(&format!(
        "  \"analytic_parallel_efficiency\": {efficiency:.2},\n"
    ));
    out.push_str(&format!(
        "  \"legacy_reference\": {{\"encode_ms\": {legacy_encode_ms:.3}, \
         \"speedup_vs_legacy\": {legacy_speedup:.2}}},\n"
    ));
    out.push_str(&format!(
        "  \"wire_bytes\": {{\"v2_meta_bytes\": {v2_meta_bytes}, \
         \"v3_columns_bytes\": {v3_columns_bytes}, \
         \"reduction_ratio\": {v3_meta_reduction:.2}}},\n"
    ));
    out.push_str("  \"virtual_overlap\": [\n");
    for (i, s) in virtual_overlap.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"checkpoints\": {}, \
             \"pause_ms_barrier\": {:.4}, \"pause_ms_overlap\": {:.4}, \
             \"reduction_pct\": {:.2}}}{}\n",
            s.workload,
            s.checkpoints,
            s.pause_ms_barrier,
            s.pause_ms_overlap,
            s.reduction_pct,
            if i + 1 == virtual_overlap.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_consistent_rows() {
        let out = run_datapath(Scale::Quick);
        assert_eq!(out.rows.len(), WORKER_SWEEP.len());
        assert!(out.rows.iter().all(|r| r.total_ms > 0.0));
        assert!(out.rows.iter().all(|r| r.streamed_ms > 0.0));
        assert!(out.rows.iter().all(|r| r.v3_meta_ms > 0.0));
        assert!(out.rows.iter().all(|r| r.throughput_mib_per_s > 0.0));
        assert!((out.rows[0].measured_parallelism - 1.0).abs() < 1e-9);
        assert!(out.legacy_speedup > 0.0);
        // The columnar layout must pack the same metas into at least 3x
        // fewer bytes than the fixed 14-byte v2 records.
        assert!(
            out.v3_meta_reduction >= 3.0,
            "columnar density win too small: {:.2}x",
            out.v3_meta_reduction
        );
        assert!(out.json.contains("\"host_cpus\""));
        assert!(out.json.contains("\"streamed_ms\""));
        assert!(out.json.contains("\"v3_meta_ms\""));
        assert!(out.json.contains("\"wire_bytes\""));
        assert!(out.json.contains("\"speedup_vs_legacy\""));
        assert!(out.json.contains("\"virtual_overlap\""));
    }

    #[test]
    fn lane_and_chunk_overrides_shape_the_sweep() {
        let out = run_datapath_with(
            Scale::Quick,
            DatapathOptions {
                lanes: Some(4),
                chunk_pages: Some(128),
            },
        );
        let workers: Vec<u32> = out.rows.iter().map(|r| r.workers).collect();
        assert_eq!(workers, vec![1, 4]);
        assert_eq!(out.chunk_pages, 128);
    }

    #[test]
    fn virtual_overlap_shrinks_the_pause_deterministically() {
        let first = run_virtual_overlap();
        let second = run_virtual_overlap();
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.pause_ms_barrier.to_bits(), b.pause_ms_barrier.to_bits());
            assert_eq!(a.pause_ms_overlap.to_bits(), b.pause_ms_overlap.to_bits());
        }
        for s in &first {
            assert!(s.checkpoints > 0, "{} saw no checkpoints", s.workload);
            assert!(
                s.pause_ms_overlap < s.pause_ms_barrier,
                "{}: overlap must shorten the pause ({} vs {})",
                s.workload,
                s.pause_ms_overlap,
                s.pause_ms_barrier
            );
        }
    }

    #[test]
    fn legacy_reference_covers_the_same_payload() {
        let (memory, dirty) = dirty_guest(512, 2);
        let mut scratch = CollectScratch::new();
        let mut delta = MemoryDelta::new();
        collect_chunked_into(&memory, &dirty, 1, &mut scratch, &mut delta);
        let (encoded, _) = legacy_encode_reference(&delta);
        // frame header + per-page (14 meta + 4096 content)
        assert_eq!(encoded.len(), 9 + 512 * (14 + 4096));
    }
}
