//! The wire-format experiment (`repro wire`): v2 vs v3 bytes-per-epoch
//! and transfer time, plus the negotiation matrix.
//!
//! Wire format v3 re-encodes each epoch's page records against the
//! replica's committed copy of the previous epoch: one columnar
//! page-columns record per lane chunk (all metas contiguous, then all
//! payloads) instead of v2's fixed 14-byte meta record per page. The
//! experiment runs the same two deterministic workloads the datapath
//! bench uses for its overlap comparison — a phased memory load and a
//! KV store — once under the default v2 session and once with the v3
//! offer, and reports:
//!
//! * **bytes per epoch** — the encoded stream size the Translate stage
//!   recorded, averaged over the run's epochs (the paper-level win: the
//!   columnar meta layout packs a dirty page into a handful of bytes);
//! * **mean transfer time** — the virtual Transfer-stage duration,
//!   which the cost model scales with the encoded byte count, so it
//!   must drop proportionally;
//! * **negotiation** — a v3 primary against mixed v2/v3 replica sets
//!   over star and chain fan-out, reporting the per-replica negotiated
//!   versions straight from the run report;
//! * **bit-compat** — offering v3 to a v2-capped replica must leave the
//!   run fingerprint byte-identical to the default v2 session;
//! * **determinism** — the v3 run replays to the same fingerprint under
//!   the same seed.
//!
//! Every figure is virtual-time, so `BENCH_wire.json` gates exactly on
//! every host.

use here_core::{FanoutMode, ReplicationConfig, RunReport, Scenario, Stage, TopologyConfig};
use here_hypervisor::PAGE_SIZE;
use here_sim_core::time::{SimDuration, SimTime};
use here_vmstate::wire::{VERSION, VERSION_V3};
use here_workloads::memstress::MemStress;
use here_workloads::phased::{Phase, PhasedMemStress};
use here_workloads::traits::Workload;
use here_workloads::ycsb::{Ycsb, YcsbMix, YcsbSpec};

use super::Scale;

/// Seed of every scenario run in the experiment.
pub const RUN_SEED: u64 = 42;

/// One workload × wire-version run.
#[derive(Debug, Clone)]
pub struct WireRow {
    /// Workload label (`phased`, `kv`).
    pub workload: &'static str,
    /// Wire format version the session offered (and, with fully capable
    /// replicas, negotiated).
    pub version: u16,
    /// Checkpoints the run executed.
    pub checkpoints: u64,
    /// Quorum commits the run reached.
    pub commits: u64,
    /// Mean encoded checkpoint stream size per epoch, bytes.
    pub bytes_per_epoch: f64,
    /// Mean virtual Transfer-stage duration per epoch, milliseconds.
    pub mean_transfer_ms: f64,
    /// The run's report fingerprint.
    pub fingerprint: u64,
}

/// The v2→v3 reduction one workload saw.
#[derive(Debug, Clone)]
pub struct WireReduction {
    /// Workload label.
    pub workload: &'static str,
    /// v2 bytes-per-epoch over v3 bytes-per-epoch.
    pub bytes_ratio: f64,
    /// v2 mean transfer time over v3 mean transfer time.
    pub transfer_ratio: f64,
}

/// One row of the negotiation matrix: what a replica set actually
/// agreed to when the primary offered a version.
#[derive(Debug, Clone)]
pub struct NegotiationRow {
    /// Version the primary offered.
    pub offer: u16,
    /// Per-replica capability caps (`-` = fully capable).
    pub caps: String,
    /// Fan-out mode of the Transfer stage.
    pub fanout: &'static str,
    /// Per-replica negotiated versions, from the run report.
    pub negotiated: String,
    /// Quorum commits the run reached.
    pub commits: u64,
}

/// Everything `repro wire` reports.
#[derive(Debug, Clone)]
pub struct WireOutput {
    /// Seed of the scenario runs ([`RUN_SEED`]).
    pub run_seed: u64,
    /// Workload × version rows (phased/kv × v2/v3).
    pub rows: Vec<WireRow>,
    /// Per-workload v2→v3 reductions.
    pub reductions: Vec<WireReduction>,
    /// The negotiation matrix (v3 and v2 offers against mixed sets).
    pub negotiation: Vec<NegotiationRow>,
    /// Fingerprint of the default (v2) single-replica session.
    pub baseline_fingerprint: u64,
    /// Fingerprint of the same scenario offering v3 to a v2-capped
    /// replica — negotiation must fall back to the byte-identical v2
    /// path.
    pub capped_fingerprint: u64,
    /// Whether the two fingerprints above match.
    pub bit_compatible: bool,
    /// Fingerprint of the same-seed v3 rerun.
    pub rerun_fingerprint: u64,
    /// Whether the rerun matched.
    pub deterministic: bool,
    /// The same results as a JSON document (`BENCH_wire.json`).
    pub json: String,
}

fn scale_secs(scale: Scale) -> u64 {
    match scale {
        Scale::Paper => 20,
        Scale::Quick => 12,
    }
}

/// The same phased shape the datapath overlap comparison uses: a light
/// first phase, then a heavy one at 8 s.
fn phased_workload() -> (Box<dyn Workload>, u64) {
    let phases = vec![
        Phase {
            at: SimTime::ZERO,
            percent: 20,
        },
        Phase {
            at: SimTime::from_secs(8),
            percent: 70,
        },
    ];
    let workload = PhasedMemStress::new(phases).expect("wire phased schedule is valid");
    (Box::new(workload), 256)
}

fn kv_workload() -> (Box<dyn Workload>, u64) {
    let driver = Ycsb::new(YcsbSpec::small(YcsbMix::A)).expect("small KV spec is valid");
    let mem_mib = (driver.required_pages() * PAGE_SIZE).div_ceil(1024 * 1024) + 64;
    (Box::new(driver), mem_mib)
}

fn run(
    scale: Scale,
    name: &str,
    cfg: ReplicationConfig,
    workload: Box<dyn Workload>,
    mem_mib: u64,
) -> RunReport {
    Scenario::builder()
        .name(name)
        .vm_memory_mib(mem_mib)
        .vcpus(4)
        .workload(workload)
        .config(cfg)
        .duration(SimDuration::from_secs(scale_secs(scale)))
        .seed(RUN_SEED)
        .verify_consistency()
        .build()
        .expect("wire scenario is valid")
        .run()
}

/// Mean Translate-stage bytes and Transfer-stage duration over the
/// run's epochs (seq 0, the seeding stop-and-copy, excluded).
fn epoch_stats(report: &RunReport) -> (f64, f64) {
    let mean = |stage: Stage, value: fn(&here_core::StageEvent) -> f64| {
        let mut sum = 0.0;
        let mut n = 0u64;
        for e in &report.stage_events {
            if e.seq > 0 && e.stage == stage {
                sum += value(e);
                n += 1;
            }
        }
        sum / n.max(1) as f64
    };
    let bytes = mean(Stage::Translate, |e| e.bytes as f64);
    let transfer_ms = mean(Stage::Transfer, |e| e.duration.as_secs_f64() * 1e3);
    (bytes, transfer_ms)
}

fn workload_row(
    scale: Scale,
    label: &'static str,
    version: u16,
    make: fn() -> (Box<dyn Workload>, u64),
) -> WireRow {
    let mut cfg = ReplicationConfig::fixed_period(SimDuration::from_secs(2));
    if version >= VERSION_V3 {
        cfg = cfg.with_wire_v3();
    }
    let (workload, mem_mib) = make();
    let report = run(
        scale,
        &format!("wire-{label}-v{version}"),
        cfg,
        workload,
        mem_mib,
    );
    let (bytes_per_epoch, mean_transfer_ms) = epoch_stats(&report);
    WireRow {
        workload: label,
        version,
        checkpoints: report.checkpoints.len() as u64,
        commits: report.commits.len() as u64,
        bytes_per_epoch,
        mean_transfer_ms,
        fingerprint: report.fingerprint(),
    }
}

fn fanout_label(fanout: FanoutMode) -> &'static str {
    match fanout {
        FanoutMode::Star => "star",
        FanoutMode::Chain => "chain",
    }
}

fn negotiation_row(
    scale: Scale,
    offer: u16,
    caps: Option<Vec<u16>>,
    fanout: FanoutMode,
) -> NegotiationRow {
    let caps_label = match &caps {
        None => "-".to_string(),
        Some(caps) => caps
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(","),
    };
    let mut cfg = ReplicationConfig::fixed_period(SimDuration::from_secs(2))
        .with_wire_version(offer)
        .with_topology(TopologyConfig {
            replicas: 3,
            quorum: 2,
            fanout,
            stale_epoch_lag: 8,
        });
    if let Some(caps) = caps {
        cfg = cfg.with_replica_wire_caps(caps);
    }
    let report = run(
        scale,
        &format!(
            "wire-nego-v{offer}-{}-{}",
            caps_label.replace(',', "."),
            fanout_label(fanout)
        ),
        cfg,
        Box::new(MemStress::with_percent(30).with_rate(20_000)),
        64,
    );
    NegotiationRow {
        offer,
        caps: caps_label,
        fanout: fanout_label(fanout),
        negotiated: report
            .wire_versions
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(","),
        commits: report.commits.len() as u64,
    }
}

/// Runs the wire-format experiment.
pub fn run_wire(scale: Scale) -> WireOutput {
    // 1. Workload × version rows and the per-workload reductions.
    type MakeWorkload = fn() -> (Box<dyn Workload>, u64);
    let sweeps: [(&'static str, MakeWorkload); 2] =
        [("phased", phased_workload), ("kv", kv_workload)];
    let mut rows = Vec::new();
    let mut reductions = Vec::new();
    for (label, make) in sweeps {
        let v2 = workload_row(scale, label, VERSION, make);
        let v3 = workload_row(scale, label, VERSION_V3, make);
        reductions.push(WireReduction {
            workload: label,
            bytes_ratio: v2.bytes_per_epoch / v3.bytes_per_epoch.max(1.0),
            transfer_ratio: v2.mean_transfer_ms / v3.mean_transfer_ms.max(1e-9),
        });
        rows.push(v2);
        rows.push(v3);
    }

    // 2. The negotiation matrix: a v3 primary against mixed and capped
    //    sets over both fan-out modes, plus a v2 offer to a fully
    //    capable set (nobody may exceed the offer).
    let negotiation = vec![
        negotiation_row(scale, VERSION_V3, None, FanoutMode::Star),
        negotiation_row(
            scale,
            VERSION_V3,
            Some(vec![VERSION_V3, VERSION, VERSION_V3]),
            FanoutMode::Star,
        ),
        negotiation_row(
            scale,
            VERSION_V3,
            Some(vec![VERSION_V3, VERSION, VERSION_V3]),
            FanoutMode::Chain,
        ),
        negotiation_row(
            scale,
            VERSION_V3,
            Some(vec![VERSION, VERSION, VERSION]),
            FanoutMode::Star,
        ),
        negotiation_row(scale, VERSION, None, FanoutMode::Chain),
    ];

    // 3. Bit-compat: offering v3 to a v2-capped single replica must
    //    negotiate down to the byte-identical default v2 session (same
    //    scenario name, so the fingerprints match when behaviour does).
    let (workload, mem_mib) = phased_workload();
    let baseline = run(
        scale,
        "wire-bitcompat",
        ReplicationConfig::fixed_period(SimDuration::from_secs(2)),
        workload,
        mem_mib,
    );
    let (workload, mem_mib) = phased_workload();
    let capped = run(
        scale,
        "wire-bitcompat",
        ReplicationConfig::fixed_period(SimDuration::from_secs(2))
            .with_wire_v3()
            .with_replica_wire_caps(vec![VERSION]),
        workload,
        mem_mib,
    );
    let baseline_fingerprint = baseline.fingerprint();
    let capped_fingerprint = capped.fingerprint();

    // 4. Determinism: the v3 phased run replays byte-identically.
    let rerun = workload_row(scale, "phased", VERSION_V3, phased_workload);
    let v3_phased = rows
        .iter()
        .find(|r| r.workload == "phased" && r.version == VERSION_V3)
        .expect("phased v3 row exists");
    let deterministic = rerun.fingerprint == v3_phased.fingerprint;

    let mut out = WireOutput {
        run_seed: RUN_SEED,
        rows,
        reductions,
        negotiation,
        baseline_fingerprint,
        capped_fingerprint,
        bit_compatible: baseline_fingerprint == capped_fingerprint,
        rerun_fingerprint: rerun.fingerprint,
        deterministic,
        json: String::new(),
    };
    out.json = render_json(&out);
    out
}

fn render_json(out: &WireOutput) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"wire\",\n");
    s.push_str(&format!("  \"run_seed\": {},\n", out.run_seed));
    s.push_str("  \"rows\": [\n");
    for (i, r) in out.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"version\": {}, \"checkpoints\": {}, \
             \"commits\": {}, \"bytes_per_epoch\": {:.1}, \"mean_transfer_ms\": {:.4}, \
             \"fingerprint\": \"0x{:016x}\"}}{}\n",
            r.workload,
            r.version,
            r.checkpoints,
            r.commits,
            r.bytes_per_epoch,
            r.mean_transfer_ms,
            r.fingerprint,
            if i + 1 == out.rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"reductions\": [\n");
    for (i, r) in out.reductions.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"bytes_ratio\": {:.2}, \"transfer_ratio\": {:.2}}}{}\n",
            r.workload,
            r.bytes_ratio,
            r.transfer_ratio,
            if i + 1 == out.reductions.len() {
                ""
            } else {
                ","
            },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"negotiation\": [\n");
    for (i, n) in out.negotiation.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"offer\": {}, \"caps\": \"{}\", \"fanout\": \"{}\", \
             \"negotiated\": \"{}\", \"commits\": {}}}{}\n",
            n.offer,
            n.caps,
            n.fanout,
            n.negotiated,
            n.commits,
            if i + 1 == out.negotiation.len() {
                ""
            } else {
                ","
            },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"bit_compat\": {{\"baseline_fingerprint\": \"0x{:016x}\", \
         \"capped_fingerprint\": \"0x{:016x}\", \"bit_compatible\": {}}},\n",
        out.baseline_fingerprint, out.capped_fingerprint, out.bit_compatible
    ));
    s.push_str(&format!(
        "  \"determinism\": {{\"fingerprint\": \"0x{:016x}\", \"deterministic\": {}}}\n",
        out.rerun_fingerprint, out.deterministic
    ));
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_wire_run_shows_the_v3_reduction() {
        let out = run_wire(Scale::Quick);
        assert_eq!(out.rows.len(), 4);
        for r in &out.rows {
            assert!(
                r.checkpoints > 0,
                "{} v{} saw no epochs",
                r.workload,
                r.version
            );
            assert!(
                r.commits > 0,
                "{} v{} committed nothing",
                r.workload,
                r.version
            );
            assert!(r.bytes_per_epoch > 0.0);
        }
        for red in &out.reductions {
            assert!(
                red.bytes_ratio >= 3.0,
                "{}: v3 must cut bytes-per-epoch at least 3x, got {:.2}x",
                red.workload,
                red.bytes_ratio
            );
            assert!(
                red.transfer_ratio > 1.5,
                "{}: transfer time must drop with the bytes, got {:.2}x",
                red.workload,
                red.transfer_ratio
            );
        }
        let mixed_star = out
            .negotiation
            .iter()
            .find(|n| n.offer == VERSION_V3 && n.caps == "3,2,3" && n.fanout == "star")
            .expect("mixed star row exists");
        assert_eq!(mixed_star.negotiated, "3,2,3");
        let uncapped = out
            .negotiation
            .iter()
            .find(|n| n.offer == VERSION_V3 && n.caps == "-")
            .expect("uncapped v3 row exists");
        assert_eq!(uncapped.negotiated, "3,3,3");
        let v2_offer = out
            .negotiation
            .iter()
            .find(|n| n.offer == VERSION)
            .expect("v2 offer row exists");
        assert_eq!(v2_offer.negotiated, "2,2,2");
        assert!(
            out.bit_compatible,
            "v2-capped negotiation drifted from the default path"
        );
        assert!(out.deterministic, "same-seed v3 rerun drifted");
        assert!(
            !out.json.contains("wall"),
            "wire JSON must stay host-independent"
        );
    }
}
