//! Application benchmarks: YCSB (Figs. 11–13) and SPEC CPU (Figs. 14–16)
//! under the Table 6 configurations.

use here_core::{ReplicationConfig, Scenario};
use here_sim_core::time::SimDuration;
use here_workloads::spec::{SpecBenchmark, SpecKernel, ALL_BENCHMARKS};
use here_workloads::traits::Workload;
use here_workloads::ycsb::{Ycsb, YcsbMix, YcsbSpec, ALL_MIXES};

use super::Scale;

/// The named configurations of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Config {
    /// Xen without replication.
    Xen,
    /// HERE with D = 0 % and T_max = 3 s (fixed 3 s period).
    Here3s0,
    /// HERE with D = 0 % and T_max = 5 s (fixed 5 s period).
    Here5s0,
    /// HERE with D = 20 % and T_max = ∞.
    HereInf20,
    /// HERE with D = 30 % and T_max = ∞.
    HereInf30,
    /// HERE with D = 40 % and T_max = ∞.
    HereInf40,
    /// HERE with D = 30 % and T_max = 5 s.
    Here5s30,
    /// HERE with D = 40 % and T_max = 3 s.
    Here3s40,
    /// Remus with T = 3 s.
    Remus3s,
    /// Remus with T = 5 s.
    Remus5s,
}

impl Config {
    /// Table 6-style acronym.
    pub fn label(self) -> &'static str {
        match self {
            Config::Xen => "Xen",
            Config::Here3s0 => "HERE(3Sec,0%)",
            Config::Here5s0 => "HERE(5Sec,0%)",
            Config::HereInf20 => "HERE(inf,20%)",
            Config::HereInf30 => "HERE(inf,30%)",
            Config::HereInf40 => "HERE(inf,40%)",
            Config::Here5s30 => "HERE(5Sec,30%)",
            Config::Here3s40 => "HERE(3Sec,40%)",
            Config::Remus3s => "Remus3Sec",
            Config::Remus5s => "Remus5Sec",
        }
    }

    /// The replication configuration, or `None` for the bare baseline.
    pub fn replication(self) -> Option<ReplicationConfig> {
        match self {
            Config::Xen => None,
            Config::Here3s0 => Some(ReplicationConfig::fixed_period(SimDuration::from_secs(3))),
            Config::Here5s0 => Some(ReplicationConfig::fixed_period(SimDuration::from_secs(5))),
            Config::HereInf20 => Some(ReplicationConfig::dynamic(0.20, SimDuration::MAX)),
            Config::HereInf30 => Some(ReplicationConfig::dynamic(0.30, SimDuration::MAX)),
            Config::HereInf40 => Some(ReplicationConfig::dynamic(0.40, SimDuration::MAX)),
            Config::Here5s30 => Some(ReplicationConfig::dynamic(0.30, SimDuration::from_secs(5))),
            Config::Here3s40 => Some(ReplicationConfig::dynamic(0.40, SimDuration::from_secs(3))),
            Config::Remus3s => Some(ReplicationConfig::remus(SimDuration::from_secs(3))),
            Config::Remus5s => Some(ReplicationConfig::remus(SimDuration::from_secs(5))),
        }
    }
}

/// Fig. 11's config set.
pub const FIG11_CONFIGS: [Config; 5] = [
    Config::Xen,
    Config::Here3s0,
    Config::Here5s0,
    Config::Remus3s,
    Config::Remus5s,
];

/// Fig. 12's config set.
pub const FIG12_CONFIGS: [Config; 4] = [
    Config::Xen,
    Config::HereInf20,
    Config::HereInf30,
    Config::HereInf40,
];

/// Fig. 13's config set.
pub const FIG13_CONFIGS: [Config; 3] = [Config::Xen, Config::Here3s40, Config::Here5s30];

/// One bar of a YCSB figure.
#[derive(Debug, Clone, PartialEq)]
pub struct YcsbBar {
    /// Which YCSB workload.
    pub mix: YcsbMix,
    /// Which configuration.
    pub config: Config,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Degradation vs. the Xen baseline, percent (the number above the
    /// paper's bars).
    pub degradation_pct: f64,
}

/// Warmup long enough for Algorithm 1 to descend from any of Table 6's
/// starting periods before measurement opens.
pub(super) fn dynamic_warmup(config: &ReplicationConfig) -> SimDuration {
    match config.period {
        here_core::PeriodPolicy::Dynamic { .. } => SimDuration::from_secs(60),
        here_core::PeriodPolicy::Fixed(_) => SimDuration::ZERO,
    }
}

fn run_ycsb_once(spec: YcsbSpec, config: Config) -> f64 {
    let driver = Ycsb::new(spec).expect("valid spec");
    let mem_mib = (driver.required_pages() * here_hypervisor::PAGE_SIZE).div_ceil(1024 * 1024) + 64;
    let mut b = Scenario::builder()
        .name(format!("ycsb-{}-{}", spec.mix.label(), config.label()))
        .vm_memory_mib(mem_mib)
        .vcpus(4)
        .workload(Box::new(driver))
        .duration(SimDuration::from_secs(1200));
    b = match config.replication() {
        Some(cfg) => {
            let warmup = dynamic_warmup(&cfg);
            b.config(cfg).warmup_under_load(warmup)
        }
        None => b.unprotected(),
    };
    b.build()
        .expect("valid scenario")
        .run()
        .throughput_ops_per_sec
}

/// Runs a YCSB figure: every workload × every configuration in `configs`.
pub fn run_ycsb_figure(scale: Scale, configs: &[Config]) -> Vec<YcsbBar> {
    let mixes: &[YcsbMix] = match scale {
        Scale::Paper => &ALL_MIXES,
        Scale::Quick => &[YcsbMix::A, YcsbMix::C],
    };
    let mut bars = Vec::new();
    for &mix in mixes {
        let spec = match scale {
            Scale::Paper => YcsbSpec::paper(mix),
            Scale::Quick => YcsbSpec::small(mix),
        };
        let baseline = run_ycsb_once(spec, Config::Xen);
        for &config in configs {
            let ops = if config == Config::Xen {
                baseline
            } else {
                run_ycsb_once(spec, config)
            };
            bars.push(YcsbBar {
                mix,
                config,
                ops_per_sec: ops,
                degradation_pct: (baseline - ops) / baseline * 100.0,
            });
        }
    }
    bars
}

/// One bar of a SPEC figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecBar {
    /// Which benchmark.
    pub benchmark: SpecBenchmark,
    /// Which configuration.
    pub config: Config,
    /// SPEC-style rate in operations per second.
    pub rate: f64,
    /// Degradation vs. the Xen baseline, percent.
    pub degradation_pct: f64,
}

fn run_spec_once(benchmark: SpecBenchmark, config: Config, duration: SimDuration) -> f64 {
    let kernel = SpecKernel::new(benchmark);
    let mem_mib = kernel.profile().footprint_mib + 128;
    let mut b = Scenario::builder()
        .name(format!("spec-{}-{}", kernel.name(), config.label()))
        .vm_memory_mib(mem_mib)
        .vcpus(4)
        .workload(Box::new(kernel))
        .duration(duration);
    b = match config.replication() {
        Some(cfg) => {
            let warmup = dynamic_warmup(&cfg);
            b.config(cfg).warmup_under_load(warmup)
        }
        None => b.unprotected(),
    };
    b.build()
        .expect("valid scenario")
        .run()
        .throughput_ops_per_sec
}

/// Runs a SPEC figure: every benchmark × every configuration in `configs`.
pub fn run_spec_figure(scale: Scale, configs: &[Config]) -> Vec<SpecBar> {
    let (benchmarks, duration): (&[SpecBenchmark], SimDuration) = match scale {
        Scale::Paper => (&ALL_BENCHMARKS, SimDuration::from_secs(240)),
        Scale::Quick => (
            &[SpecBenchmark::Gcc, SpecBenchmark::Lbm],
            SimDuration::from_secs(60),
        ),
    };
    let mut bars = Vec::new();
    for &benchmark in benchmarks {
        let baseline = run_spec_once(benchmark, Config::Xen, duration);
        for &config in configs {
            let rate = if config == Config::Xen {
                baseline
            } else {
                run_spec_once(benchmark, config, duration)
            };
            bars.push(SpecBar {
                benchmark,
                config,
                rate,
                degradation_pct: (baseline - rate) / baseline * 100.0,
            });
        }
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar(bars: &[YcsbBar], mix: YcsbMix, config: Config) -> &YcsbBar {
        bars.iter()
            .find(|b| b.mix == mix && b.config == config)
            .expect("bar present")
    }

    #[test]
    fn fig11_ordering_here_beats_remus_at_equal_period() {
        let bars = run_ycsb_figure(Scale::Quick, &FIG11_CONFIGS);
        for &mix in &[YcsbMix::A, YcsbMix::C] {
            let xen = bar(&bars, mix, Config::Xen).ops_per_sec;
            let here3 = bar(&bars, mix, Config::Here3s0).ops_per_sec;
            let remus3 = bar(&bars, mix, Config::Remus3s).ops_per_sec;
            assert!(xen > here3, "{mix:?}: baseline must be fastest");
            assert!(
                here3 > remus3,
                "{mix:?}: HERE(3s) {here3} must beat Remus(3s) {remus3}"
            );
        }
    }

    #[test]
    fn fig12_degradation_tracks_the_target() {
        let bars = run_ycsb_figure(Scale::Quick, &[Config::Xen, Config::HereInf20]);
        let d = bar(&bars, YcsbMix::A, Config::HereInf20).degradation_pct;
        assert!(
            (10.0..35.0).contains(&d),
            "HERE(inf,20%) degradation {d} should be near 20"
        );
    }

    #[test]
    fn spec_bars_have_positive_rates_and_sane_degradations() {
        let bars = run_spec_figure(Scale::Quick, &[Config::Xen, Config::Here3s0]);
        for b in &bars {
            assert!(b.rate > 0.0);
            assert!(b.degradation_pct >= -1.0 && b.degradation_pct < 90.0);
        }
        // Replication visibly degrades both kernels; at the quick scale
        // both footprints clamp to the small VM, so lbm's higher dirty
        // rate keeps it at least on par with gcc.
        let gcc = bars
            .iter()
            .find(|b| b.benchmark == SpecBenchmark::Gcc && b.config == Config::Here3s0)
            .unwrap();
        let lbm = bars
            .iter()
            .find(|b| b.benchmark == SpecBenchmark::Lbm && b.config == Config::Here3s0)
            .unwrap();
        assert!(gcc.degradation_pct > 2.0, "gcc {}", gcc.degradation_pct);
        assert!(
            lbm.degradation_pct > gcc.degradation_pct - 2.0,
            "lbm {} vs gcc {}",
            lbm.degradation_pct,
            gcc.degradation_pct
        );
    }
}
