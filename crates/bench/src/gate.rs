//! The bench-trajectory regression gate: diffs a freshly produced
//! `BENCH_*.json` against a committed baseline with per-key tolerances
//! and reports every regression.
//!
//! The virtual-time simulator is deterministic (seeded RNG, threads
//! derived from vCPUs), so most fields must match the baseline *exactly*
//! across hosts. Wall-clock measurements (`*_ms`, throughput, measured α
//! and parallelism) vary with the machine, so they get a relative
//! tolerance; purely host-dependent fields (`host_cpus`, the embedded
//! Prometheus dump, raw `wall_nanos`) are ignored. The comparison is
//! structural, over a minimal hand-rolled JSON parse — the vendored
//! `serde` is a no-op, like everywhere else in this workspace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value, just enough for the gate's structural diff.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; exact-compare uses a tiny epsilon).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted for deterministic iteration.
    Obj(BTreeMap<String, Json>),
}

/// Parses a JSON document. Returns a human-readable error with the byte
/// offset on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// How one leaf key is compared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rule {
    /// Must match exactly (numbers within a tiny epsilon).
    Exact,
    /// Relative tolerance: `|fresh − base| ≤ tol × max(|base|, floor)`.
    Relative(f64),
    /// Absolute tolerance in the key's own unit.
    Absolute(f64),
    /// Not compared at all (host-dependent).
    Ignore,
}

/// Leaf keys measured in wall-clock time — they vary across hosts and get
/// the relative tolerance instead of an exact compare.
pub const MEASURED_KEYS: &[&str] = &[
    "baseline_ms",
    "instrumented_ms",
    "harvest_ms",
    "translate_ms",
    "encode_ms",
    "decode_restore_ms",
    "streamed_ms",
    "v3_meta_ms",
    "total_ms",
    "throughput_mib_per_s",
    "measured_alpha_us_per_page",
    "measured_parallelism",
    "speedup_vs_legacy",
];

/// Leaf keys that are host-dependent noise, never compared.
pub const IGNORED_KEYS: &[&str] = &[
    "host_cpus",
    "prometheus",
    "wall_nanos",
    "flight_recorder",
    "steals",
    "occupancy_pct",
];

/// The gate's per-key policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Relative tolerance applied to [`MEASURED_KEYS`] (e.g. `3.0` allows
    /// a 4× swing — wall time on shared CI machines is noisy).
    pub measured_rel: f64,
    /// Absolute tolerance for `overhead_pct` (percentage points).
    pub overhead_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            measured_rel: 3.0,
            overhead_abs: 10.0,
        }
    }
}

impl Tolerances {
    /// The comparison rule for a leaf key.
    pub fn rule_for(&self, key: &str) -> Rule {
        if IGNORED_KEYS.contains(&key) {
            Rule::Ignore
        } else if key == "overhead_pct" {
            Rule::Absolute(self.overhead_abs)
        } else if MEASURED_KEYS.contains(&key) {
            Rule::Relative(self.measured_rel)
        } else {
            Rule::Exact
        }
    }
}

/// One difference between baseline and fresh documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Dotted path to the offending leaf (`overhead.baseline_ms`,
    /// `workers[2].total_ms`, ...).
    pub path: String,
    /// What went wrong, human-readable.
    pub detail: String,
}

/// Compares a fresh document against the baseline. Returns every
/// regression found (empty = gate passes).
pub fn compare(baseline: &Json, fresh: &Json, tol: &Tolerances) -> Vec<Regression> {
    let mut out = Vec::new();
    walk(baseline, fresh, "", "", tol, &mut out);
    out
}

fn walk(
    base: &Json,
    fresh: &Json,
    path: &str,
    key: &str,
    tol: &Tolerances,
    out: &mut Vec<Regression>,
) {
    if tol.rule_for(key) == Rule::Ignore {
        return;
    }
    match (base, fresh) {
        (Json::Obj(b), Json::Obj(f)) => {
            for (k, bv) in b {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match f.get(k) {
                    Some(fv) => walk(bv, fv, &child, k, tol, out),
                    None => out.push(Regression {
                        path: child,
                        detail: "missing in fresh output".to_string(),
                    }),
                }
            }
            for k in f.keys() {
                if !b.contains_key(k) {
                    out.push(Regression {
                        path: format!("{path}.{k}"),
                        detail: "unexpected new key (bless a new baseline)".to_string(),
                    });
                }
            }
        }
        (Json::Arr(b), Json::Arr(f)) => {
            if b.len() != f.len() {
                out.push(Regression {
                    path: path.to_string(),
                    detail: format!("array length {} != baseline {}", f.len(), b.len()),
                });
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                // Elements inherit the array's key so `workers[i].x`
                // rules resolve on `x`, not the index.
                walk(bv, fv, &format!("{path}[{i}]"), key, tol, out);
            }
        }
        (Json::Num(b), Json::Num(f)) => {
            let ok = match tol.rule_for(key) {
                Rule::Ignore => true,
                Rule::Exact => (b - f).abs() <= 1e-9 * b.abs().max(1.0),
                Rule::Relative(rel) => (b - f).abs() <= rel * b.abs().max(1e-9),
                Rule::Absolute(abs) => (b - f).abs() <= abs,
            };
            if !ok {
                out.push(Regression {
                    path: path.to_string(),
                    detail: format!("{f} vs baseline {b} ({:?})", tol.rule_for(key)),
                });
            }
        }
        _ => {
            if discriminant_name(base) != discriminant_name(fresh) {
                out.push(Regression {
                    path: path.to_string(),
                    detail: format!(
                        "type changed: {} vs baseline {}",
                        discriminant_name(fresh),
                        discriminant_name(base)
                    ),
                });
            } else if base != fresh {
                out.push(Regression {
                    path: path.to_string(),
                    detail: "value differs from baseline".to_string(),
                });
            }
        }
    }
}

fn discriminant_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

/// Runs the gate over two documents read from disk, rendering a report.
/// Returns `Ok(report)` when the gate passes, `Err(report)` when it
/// regresses (or either file fails to read/parse).
pub fn gate_files(
    baseline_path: &str,
    fresh_path: &str,
    tol: &Tolerances,
) -> Result<String, String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let baseline = parse(&read(baseline_path)?)
        .map_err(|e| format!("baseline {baseline_path} is not valid JSON: {e}"))?;
    let fresh = parse(&read(fresh_path)?)
        .map_err(|e| format!("fresh output {fresh_path} is not valid JSON: {e}"))?;
    let regressions = compare(&baseline, &fresh, tol);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "gate: {fresh_path} vs baseline {baseline_path} (measured ±{:.0}%, overhead ±{} pts)",
        tol.measured_rel * 100.0,
        tol.overhead_abs
    );
    if regressions.is_empty() {
        let _ = writeln!(report, "PASS: no regressions");
        Ok(report)
    } else {
        for r in &regressions {
            let _ = writeln!(report, "REGRESSION {}: {}", r.path, r.detail);
        }
        let _ = writeln!(report, "FAIL: {} regression(s)", regressions.len());
        Err(report)
    }
}

/// Gates *measured* parallel efficiency from a fresh `BENCH_datapath.json`:
/// the `workers == lanes` row must report
/// `measured_parallelism ≥ lanes × min_efficiency`.
///
/// Wall-clock parallelism only means something when the host actually has
/// the cores, so hosts with `host_cpus < lanes` skip the check with a
/// notice instead of failing — a 1-CPU CI runner must not go red because
/// physics denied it a speedup. Returns `Ok(report)` on pass or skip,
/// `Err(report)` on a real efficiency regression or a malformed document.
pub fn efficiency_gate(fresh: &Json, lanes: u64, min_efficiency: f64) -> Result<String, String> {
    let Json::Obj(doc) = fresh else {
        return Err("fresh output is not a JSON object".to_string());
    };
    let host_cpus = match doc.get("host_cpus") {
        Some(Json::Num(n)) => *n as u64,
        _ => return Err("fresh output has no numeric host_cpus".to_string()),
    };
    if host_cpus < lanes {
        return Ok(format!(
            "SKIP: host has {host_cpus} CPU(s) < {lanes} lanes; \
             parallel efficiency not measurable here\n"
        ));
    }
    let Some(Json::Arr(rows)) = doc.get("workers") else {
        return Err("fresh output has no workers array".to_string());
    };
    for row in rows {
        let Json::Obj(row) = row else { continue };
        let workers = match row.get("workers") {
            Some(Json::Num(n)) => *n as u64,
            _ => continue,
        };
        if workers != lanes {
            continue;
        }
        let measured = match row.get("measured_parallelism") {
            Some(Json::Num(n)) => *n,
            _ => {
                return Err(format!(
                    "workers=={lanes} row has no numeric measured_parallelism"
                ))
            }
        };
        let floor = lanes as f64 * min_efficiency;
        return if measured >= floor {
            Ok(format!(
                "PASS: measured_parallelism {measured:.2} at {lanes} lanes \
                 >= {floor:.2} ({min_efficiency:.0}% efficiency floor, {host_cpus} host CPUs)\n",
                min_efficiency = min_efficiency * 100.0
            ))
        } else {
            Err(format!(
                "FAIL: measured_parallelism {measured:.2} at {lanes} lanes \
                 < {floor:.2} ({min_efficiency:.0}% efficiency floor, {host_cpus} host CPUs)\n",
                min_efficiency = min_efficiency * 100.0
            ))
        };
    }
    Err(format!("fresh output has no workers=={lanes} row"))
}

/// Runs [`efficiency_gate`] over a document read from disk.
pub fn efficiency_gate_file(
    fresh_path: &str,
    lanes: u64,
    min_efficiency: f64,
) -> Result<String, String> {
    let text = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read {fresh_path}: {e}"))?;
    let fresh =
        parse(&text).map_err(|e| format!("fresh output {fresh_path} is not valid JSON: {e}"))?;
    efficiency_gate(&fresh, lanes, min_efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared negative-gate harness every suite leans on: the
    /// unperturbed document must self-compare clean, then each
    /// `(from, to, path)` perturbation must be caught as exactly one
    /// regression at `path`.
    fn assert_gate_catches(doc: &str, cases: &[(&str, &str, &str)]) {
        let base = parse(doc).unwrap();
        assert!(
            compare(&base, &base, &Tolerances::default()).is_empty(),
            "document must self-compare clean"
        );
        for (from, to, path) in cases {
            let mutated = doc.replace(from, to);
            assert_ne!(&mutated, doc, "perturbation '{from}' did not apply");
            let fresh = parse(&mutated).unwrap();
            let regressions = compare(&base, &fresh, &Tolerances::default());
            assert_eq!(regressions.len(), 1, "{path}: {regressions:?}");
            assert_eq!(regressions[0].path, *path);
        }
    }

    const DOC: &str = r#"{
        "experiment": "datapath",
        "host_cpus": 8,
        "pages": 4096,
        "workers": [
            {"workers": 1, "total_ms": 10.5, "measured_parallelism": 1.0, "analytic_parallelism": 1.0},
            {"workers": 2, "total_ms": 6.2, "measured_parallelism": 1.7, "analytic_parallelism": 1.8}
        ],
        "overhead_pct": 1.25,
        "slo": null
    }"#;

    #[test]
    fn parser_round_trips_the_shapes_the_gate_needs() {
        let doc = parse(DOC).unwrap();
        let Json::Obj(map) = &doc else {
            panic!("not an object")
        };
        assert_eq!(map["experiment"], Json::Str("datapath".to_string()));
        assert_eq!(map["pages"], Json::Num(4096.0));
        assert_eq!(map["slo"], Json::Null);
        let Json::Arr(workers) = &map["workers"] else {
            panic!("workers")
        };
        assert_eq!(workers.len(), 2);
    }

    #[test]
    fn parser_decodes_escapes() {
        let doc = parse("{\"s\":\"a\\\"b\\nc\\u0041\"}").unwrap();
        let Json::Obj(map) = doc else { panic!() };
        assert_eq!(map["s"], Json::Str("a\"b\ncA".to_string()));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
    }

    #[test]
    fn self_compare_passes() {
        let doc = parse(DOC).unwrap();
        assert!(compare(&doc, &doc, &Tolerances::default()).is_empty());
    }

    #[test]
    fn wall_clock_drift_within_tolerance_passes() {
        let base = parse(DOC).unwrap();
        let fresh = parse(&DOC.replace("10.5", "20.9").replace("6.2", "3.1")).unwrap();
        assert!(compare(&base, &fresh, &Tolerances::default()).is_empty());
    }

    #[test]
    fn host_cpus_is_ignored() {
        let base = parse(DOC).unwrap();
        let fresh = parse(&DOC.replace("\"host_cpus\": 8", "\"host_cpus\": 96")).unwrap();
        assert!(compare(&base, &fresh, &Tolerances::default()).is_empty());
    }

    #[test]
    fn perturbed_deterministic_field_fails() {
        // The negative test the CI gate hinges on: a synthetic
        // perturbation of a deterministic field must be caught.
        assert_gate_catches(
            DOC,
            &[
                ("\"pages\": 4096", "\"pages\": 4097", "pages"),
                (
                    "\"analytic_parallelism\": 1.8",
                    "\"analytic_parallelism\": 1.9",
                    "workers[1].analytic_parallelism",
                ),
            ],
        );
    }

    #[test]
    fn runaway_wall_clock_fails_even_with_tolerance() {
        assert_gate_catches(DOC, &[("10.5", "99.0", "workers[0].total_ms")]);
    }

    #[test]
    fn overhead_pct_uses_absolute_tolerance() {
        let base = parse(DOC).unwrap();
        let within = parse(&DOC.replace("1.25", "9.0")).unwrap();
        assert!(compare(&base, &within, &Tolerances::default()).is_empty());
        let outside = parse(&DOC.replace("1.25", "30.0")).unwrap();
        assert_eq!(compare(&base, &outside, &Tolerances::default()).len(), 1);
    }

    /// The committed `baselines/BENCH_chaos.json` shape: every leaf is
    /// deterministic simulated time or a counter, so everything below
    /// must compare under [`Rule::Exact`].
    const CHAOS_DOC: &str = r#"{
        "experiment": "chaos",
        "sweep": {
            "plan_seed": 7,
            "faults_injected": 9,
            "transfer_retries": 7,
            "epochs_aborted": 1,
            "worst_staleness_ms": 4032.445
        },
        "crash": {
            "resumed_from_checkpoint": 4,
            "crash_resumes_last_acked": true,
            "detection_ms": 40.000
        },
        "determinism": {
            "fingerprint": "0xf95a4248ab7a4570",
            "deterministic": true
        }
    }"#;

    #[test]
    fn silently_renamed_chaos_key_fails_as_missing_plus_unexpected() {
        // A rename must never slip through as "key went away, key
        // appeared": the gate reports both sides so the diff is loud.
        let base = parse(CHAOS_DOC).unwrap();
        let renamed =
            parse(&CHAOS_DOC.replace("\"transfer_retries\"", "\"transfer_attempts\"")).unwrap();
        let regressions = compare(&base, &renamed, &Tolerances::default());
        assert_eq!(regressions.len(), 2);
        assert!(regressions
            .iter()
            .any(|r| r.path == "sweep.transfer_retries" && r.detail.contains("missing")));
        assert!(regressions
            .iter()
            .any(|r| r.path == "sweep.transfer_attempts" && r.detail.contains("unexpected")));
    }

    #[test]
    fn chaos_leaves_are_exact_even_when_named_like_wall_clock() {
        // `*_ms` keys normally suggest wall clock, but the chaos times
        // are simulated — they must not inherit the relative tolerance.
        assert_eq!(
            Tolerances::default().rule_for("worst_staleness_ms"),
            Rule::Exact
        );
        assert_eq!(Tolerances::default().rule_for("detection_ms"), Rule::Exact);
        assert_gate_catches(
            CHAOS_DOC,
            &[("4032.445", "4032.545", "sweep.worst_staleness_ms")],
        );
    }

    #[test]
    fn chaos_invariant_and_fingerprint_flips_fail() {
        assert_gate_catches(
            CHAOS_DOC,
            &[
                (
                    "\"crash_resumes_last_acked\": true",
                    "\"crash_resumes_last_acked\": false",
                    "crash.crash_resumes_last_acked",
                ),
                (
                    "\"deterministic\": true",
                    "\"deterministic\": false",
                    "determinism.deterministic",
                ),
                (
                    "0xf95a4248ab7a4570",
                    "0xf95a4248ab7a4571",
                    "determinism.fingerprint",
                ),
                (
                    "\"resumed_from_checkpoint\": 4",
                    "\"resumed_from_checkpoint\": 5",
                    "crash.resumed_from_checkpoint",
                ),
            ],
        );
    }

    /// The committed `baselines/BENCH_topology.json` shape: every leaf is
    /// deterministic simulated time, a counter or a fingerprint, so the
    /// whole document compares under [`Rule::Exact`].
    const TOPOLOGY_DOC: &str = r#"{
        "experiment": "topology",
        "run_seed": 42,
        "stale_epoch_lag": 8,
        "rows": [
            {"replicas": 1, "quorum": 1, "fanout": "star", "commits": 15,
             "mean_commit_latency_ms": 0.010, "worst_staleness_ms": 2010.423,
             "stalest_replica": 0, "fingerprint": "0xa082f4b2c6a55c4f"},
            {"replicas": 3, "quorum": 2, "fanout": "chain", "commits": 15,
             "mean_commit_latency_ms": 0.020, "worst_staleness_ms": 2015.823,
             "stalest_replica": 2, "fingerprint": "0x5bc0a1f29e77d103"}
        ],
        "bit_compat": {
            "baseline_fingerprint": "0x49210372aba1d921",
            "degenerate_fingerprint": "0x49210372aba1d921",
            "bit_compatible": true
        },
        "determinism": {
            "fingerprint": "0xb98b61465ee022a7",
            "deterministic": true
        }
    }"#;

    #[test]
    fn silently_renamed_topology_key_fails_as_missing_plus_unexpected() {
        // Same loud-rename guarantee as the chaos artifact: dropping
        // `worst_staleness_ms` for a new name must report both sides, in
        // every row it occurs in.
        let base = parse(TOPOLOGY_DOC).unwrap();
        let renamed =
            parse(&TOPOLOGY_DOC.replace("\"worst_staleness_ms\"", "\"max_staleness_ms\"")).unwrap();
        let regressions = compare(&base, &renamed, &Tolerances::default());
        assert_eq!(regressions.len(), 4);
        for i in 0..2 {
            assert!(regressions
                .iter()
                .any(|r| r.path == format!("rows[{i}].worst_staleness_ms")
                    && r.detail.contains("missing")));
            assert!(regressions
                .iter()
                .any(|r| r.path == format!("rows[{i}].max_staleness_ms")
                    && r.detail.contains("unexpected")));
        }
    }

    #[test]
    fn topology_invariant_and_fingerprint_flips_fail() {
        assert_gate_catches(
            TOPOLOGY_DOC,
            &[
                (
                    "\"bit_compatible\": true",
                    "\"bit_compatible\": false",
                    "bit_compat.bit_compatible",
                ),
                (
                    "0xb98b61465ee022a7",
                    "0xb98b61465ee022a8",
                    "determinism.fingerprint",
                ),
                (
                    "\"stalest_replica\": 2",
                    "\"stalest_replica\": 1",
                    "rows[1].stalest_replica",
                ),
                ("2015.823", "2015.824", "rows[1].worst_staleness_ms"),
            ],
        );
        // `mean_commit_latency_ms` is simulated, not wall clock — exact.
        assert_eq!(
            Tolerances::default().rule_for("mean_commit_latency_ms"),
            Rule::Exact
        );
    }

    #[test]
    fn pool_diagnostics_are_ignored_and_streamed_ms_is_measured() {
        // Steal counts and lane occupancy depend on scheduler timing, so
        // they must never gate; the streamed wall time is wall clock and
        // gets the relative tolerance like the other *_ms columns.
        assert_eq!(Tolerances::default().rule_for("steals"), Rule::Ignore);
        assert_eq!(
            Tolerances::default().rule_for("occupancy_pct"),
            Rule::Ignore
        );
        assert_eq!(
            Tolerances::default().rule_for("streamed_ms"),
            Rule::Relative(3.0)
        );
    }

    /// The committed `baselines/BENCH_health.json` shape: alert arcs,
    /// health trajectories and export hashes are all derived from
    /// simulated time under fixed seeds, so every leaf compares under
    /// [`Rule::Exact`] — a reordered alert log or a single drifted series
    /// window must go red.
    const HEALTH_DOC: &str = r#"{
        "experiment": "health",
        "plan_seed": 7,
        "stale_epoch_lag": 4,
        "quiet": {
            "commits": 15,
            "alerts_fired": 0,
            "final_states": "healthy,healthy,healthy",
            "series_hash": "0x9f4e447b"
        },
        "stale": {
            "commits": 15,
            "alerts_fired": 3,
            "alerts_resolved": 3,
            "alert_sequence": "retry_storm:firing@5|stale_replica:firing@7|quorum_at_risk:firing@7|stale_replica:resolved@10|quorum_at_risk:resolved@10|retry_storm:resolved@12",
            "transition_sequence": "r2:healthy->lagging@4|r2:lagging->stale@7|r2:stale->recovering@10|r2:recovering->healthy@11",
            "alert_log_hash": "0xbb233055"
        },
        "determinism": {
            "fingerprint": "0xad823e95507a1dd0",
            "deterministic": true
        }
    }"#;

    #[test]
    fn quiet_run_growing_an_alert_fails() {
        // The plane's core promise: a fault-free run fires nothing. One
        // alert appearing in the quiet scenario must be a regression.
        assert_gate_catches(
            HEALTH_DOC,
            &[(
                "\"commits\": 15,\n            \"alerts_fired\": 0",
                "\"commits\": 15,\n            \"alerts_fired\": 1",
                "quiet.alerts_fired",
            )],
        );
    }

    #[test]
    fn reordered_or_renamed_alert_arcs_fail() {
        assert_gate_catches(
            HEALTH_DOC,
            &[
                // A different firing epoch for one alert changes the arc
                // string; a renamed rule in the arc is equally loud.
                (
                    "stale_replica:firing@7",
                    "stale_replica:firing@8",
                    "stale.alert_sequence",
                ),
                ("retry_storm:", "retry_flood:", "stale.alert_sequence"),
            ],
        );
    }

    #[test]
    fn health_hash_and_invariant_flips_fail() {
        assert_gate_catches(
            HEALTH_DOC,
            &[
                ("0xbb233055", "0xbb233056", "stale.alert_log_hash"),
                ("0x9f4e447b", "0x9f4e447c", "quiet.series_hash"),
                (
                    "\"deterministic\": true",
                    "\"deterministic\": false",
                    "determinism.deterministic",
                ),
                (
                    "r2:lagging->stale@7",
                    "r2:lagging->stale@8",
                    "stale.transition_sequence",
                ),
            ],
        );
    }

    /// The committed `baselines/BENCH_postmortem.json` shape: capture
    /// identity, integrity verdicts, replay verification and the
    /// forensics diff are all derived from simulated time under fixed
    /// seeds, so every leaf compares under [`Rule::Exact`] — a bundle
    /// that stops rejecting corruption or a replay that stops
    /// reproducing must go red.
    const POSTMORTEM_DOC: &str = r#"{
        "experiment": "postmortem",
        "plan_seed": 7,
        "run_seed": 42,
        "capture": {
            "trigger": "alert",
            "trigger_epoch": 5,
            "fingerprint": "0xa3fd381326aeba0f",
            "bundle_bytes": 19923,
            "bundle_hash": "0x12979695"
        },
        "integrity": {
            "decode_round_trip": true,
            "rejects_unknown_version": true,
            "rejects_truncation": true,
            "rejects_tampering": true
        },
        "replay": {
            "fingerprint": "0xa3fd381326aeba0f",
            "verified": true
        },
        "forensics": {
            "baseline_fingerprint": "0x57c29f41d2e88a63",
            "fingerprint_reproduced": true,
            "critical_path_shifted": true,
            "divergence": "r0:acks15/15:lag0/0:retries0/0|r2:acks9/15:lag0/0:retries12/0",
            "aborted_epochs": 0,
            "throughput_delta_pct": -0.225,
            "alert_timeline": "retry_storm:firing@5|stale_replica:firing@7|quorum_at_risk:firing@7"
        }
    }"#;

    #[test]
    fn postmortem_integrity_and_replay_flips_fail() {
        assert_gate_catches(
            POSTMORTEM_DOC,
            &[
                (
                    "\"rejects_tampering\": true",
                    "\"rejects_tampering\": false",
                    "integrity.rejects_tampering",
                ),
                (
                    "\"rejects_unknown_version\": true",
                    "\"rejects_unknown_version\": false",
                    "integrity.rejects_unknown_version",
                ),
                (
                    "\"verified\": true",
                    "\"verified\": false",
                    "replay.verified",
                ),
                (
                    "\"bundle_hash\": \"0x12979695\"",
                    "\"bundle_hash\": \"0x12979696\"",
                    "capture.bundle_hash",
                ),
                (
                    "\"fingerprint_reproduced\": true",
                    "\"fingerprint_reproduced\": false",
                    "forensics.fingerprint_reproduced",
                ),
                (
                    "r2:acks9/15:lag0/0:retries12/0",
                    "r2:acks9/15:lag0/0:retries11/0",
                    "forensics.divergence",
                ),
                (
                    "quorum_at_risk:firing@7",
                    "quorum_at_risk:firing@8",
                    "forensics.alert_timeline",
                ),
                ("-0.225", "-0.325", "forensics.throughput_delta_pct"),
            ],
        );
        // The throughput delta is simulated, not wall clock — exact.
        assert_eq!(
            Tolerances::default().rule_for("throughput_delta_pct"),
            Rule::Exact
        );
    }

    /// The committed `baselines/BENCH_wire.json` shape: byte counts,
    /// virtual transfer times, negotiated version strings and
    /// fingerprints are all derived from simulated time under fixed
    /// seeds, so every leaf compares under [`Rule::Exact`] — a single
    /// extra byte per epoch, a drifted reduction ratio or a replica
    /// negotiating the wrong version must go red.
    const WIRE_DOC: &str = r#"{
        "experiment": "wire",
        "run_seed": 42,
        "rows": [
            {"workload": "phased", "version": 2, "checkpoints": 5, "commits": 5,
             "bytes_per_epoch": 262144.0, "mean_transfer_ms": 14.4200,
             "fingerprint": "0x1111111111111111"},
            {"workload": "phased", "version": 3, "checkpoints": 5, "commits": 5,
             "bytes_per_epoch": 65536.0, "mean_transfer_ms": 3.6050,
             "fingerprint": "0x2222222222222222"}
        ],
        "reductions": [
            {"workload": "phased", "bytes_ratio": 4.00, "transfer_ratio": 4.00}
        ],
        "negotiation": [
            {"offer": 3, "caps": "3,2,3", "fanout": "star",
             "negotiated": "3,2,3", "commits": 5}
        ],
        "bit_compat": {
            "baseline_fingerprint": "0x3333333333333333",
            "capped_fingerprint": "0x3333333333333333",
            "bit_compatible": true
        },
        "determinism": {
            "fingerprint": "0x2222222222222222",
            "deterministic": true
        }
    }"#;

    #[test]
    fn wire_bytes_and_transfer_leaves_are_exact() {
        // Virtual-time figures must not inherit the wall-clock
        // tolerance, `*_ms` name notwithstanding.
        assert_eq!(
            Tolerances::default().rule_for("bytes_per_epoch"),
            Rule::Exact
        );
        assert_eq!(
            Tolerances::default().rule_for("mean_transfer_ms"),
            Rule::Exact
        );
        assert_eq!(Tolerances::default().rule_for("bytes_ratio"), Rule::Exact);
        assert_gate_catches(
            WIRE_DOC,
            &[
                ("65536.0", "65537.0", "rows[1].bytes_per_epoch"),
                ("3.6050", "3.6051", "rows[1].mean_transfer_ms"),
                (
                    "\"bytes_ratio\": 4.00",
                    "\"bytes_ratio\": 3.90",
                    "reductions[0].bytes_ratio",
                ),
            ],
        );
    }

    #[test]
    fn wire_negotiation_and_bitcompat_flips_fail() {
        assert_gate_catches(
            WIRE_DOC,
            &[
                (
                    "\"negotiated\": \"3,2,3\"",
                    "\"negotiated\": \"3,3,3\"",
                    "negotiation[0].negotiated",
                ),
                (
                    "\"bit_compatible\": true",
                    "\"bit_compatible\": false",
                    "bit_compat.bit_compatible",
                ),
                (
                    "\"deterministic\": true",
                    "\"deterministic\": false",
                    "determinism.deterministic",
                ),
                (
                    "0x2222222222222222\",\n            \"deterministic",
                    "0x2222222222222223\",\n            \"deterministic",
                    "determinism.fingerprint",
                ),
            ],
        );
    }

    const EFFICIENCY_DOC: &str = r#"{
        "experiment": "datapath",
        "host_cpus": 8,
        "workers": [
            {"workers": 1, "measured_parallelism": 1.0},
            {"workers": 4, "measured_parallelism": 3.1}
        ]
    }"#;

    #[test]
    fn efficiency_gate_passes_above_the_floor() {
        let doc = parse(EFFICIENCY_DOC).unwrap();
        let report = efficiency_gate(&doc, 4, 0.6).unwrap();
        assert!(report.starts_with("PASS"), "{report}");
    }

    #[test]
    fn efficiency_gate_fails_below_the_floor() {
        let doc = parse(&EFFICIENCY_DOC.replace("3.1", "1.9")).unwrap();
        let report = efficiency_gate(&doc, 4, 0.6).unwrap_err();
        assert!(report.starts_with("FAIL"), "{report}");
    }

    #[test]
    fn efficiency_gate_skips_on_small_hosts() {
        // A 1-CPU runner cannot exhibit a 4-way speedup; the gate must
        // notice and stand down rather than fail.
        let doc = parse(&EFFICIENCY_DOC.replace("\"host_cpus\": 8", "\"host_cpus\": 1")).unwrap();
        let report = efficiency_gate(&doc, 4, 0.6).unwrap();
        assert!(report.starts_with("SKIP"), "{report}");
    }

    #[test]
    fn efficiency_gate_rejects_documents_missing_the_lane_row() {
        let doc = parse(EFFICIENCY_DOC).unwrap();
        let report = efficiency_gate(&doc, 8, 0.6).unwrap_err();
        assert!(report.contains("no workers==8 row"), "{report}");
    }

    #[test]
    fn shape_changes_fail() {
        let base = parse(DOC).unwrap();
        let missing = parse(&DOC.replace("\"pages\": 4096,", "")).unwrap();
        let regressions = compare(&base, &missing, &Tolerances::default());
        assert!(regressions
            .iter()
            .any(|r| r.path == "pages" && r.detail.contains("missing")));
        let null_swap = parse(&DOC.replace("\"slo\": null", "\"slo\": {}")).unwrap();
        assert!(compare(&base, &null_swap, &Tolerances::default())
            .iter()
            .any(|r| r.path == "slo" && r.detail.contains("type changed")));
    }
}
