//! The Common Intermediate Representation (CIR) of VM state.
//!
//! HERE translates state between hypervisors "by copying the contents of
//! vCPU registers into a common format, then restoring the corresponding
//! data into the secondary hypervisor's format" (§5.3). The CIR is that
//! common format: hypervisor-neutral descriptions of the vCPUs, platform,
//! devices and memory of a protected VM.

use serde::{Deserialize, Serialize};

use here_hypervisor::arch::ArchRegs;
use here_hypervisor::cpuid::CpuidPolicy;
use here_hypervisor::devices::DeviceIdentity;
use here_hypervisor::memory::{PageId, PageVersion};
use here_sim_core::rate::ByteSize;

/// TSC frequency of the testbed's Xeon Gold 6130, in kHz.
pub const TESTBED_TSC_KHZ: u32 = 2_100_000;

/// One vCPU in the common format: the architectural truth plus liveness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuStateCir {
    /// Architectural register file.
    pub regs: ArchRegs,
    /// Whether the vCPU was online at capture time.
    pub online: bool,
}

/// Platform-wide state that must be consistent across a failover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformCir {
    /// The (already reconciled) CPUID policy the guest observes.
    pub cpuid: CpuidPolicy,
    /// Guest TSC frequency in kHz; both sides must agree or the guest's
    /// timekeeping would jump on failover.
    pub tsc_khz: u32,
}

/// One virtual device in the common format. Only the *stable identity*
/// crosses the hypervisor boundary; ring state is reset by the device
/// switch (§5.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCir {
    /// Identity preserved across failover (MAC, disk geometry, ...).
    pub identity: DeviceIdentity,
}

/// The complete hypervisor-neutral description of a protected VM at one
/// instant — everything the secondary needs to build an equivalent replica.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineStateCir {
    /// VM name.
    pub name: String,
    /// Guest memory size.
    pub memory_size: ByteSize,
    /// All vCPUs in index order.
    pub vcpus: Vec<CpuStateCir>,
    /// Platform state.
    pub platform: PlatformCir,
    /// Device identities in attach order.
    pub devices: Vec<DeviceCir>,
}

impl MachineStateCir {
    /// Number of vCPUs described.
    pub fn vcpu_count(&self) -> usize {
        self.vcpus.len()
    }
}

/// A batch of memory pages in transit: the unit the replication stream
/// moves. Each entry is `(frame, version-record)`; the receiving side
/// installs them verbatim, so primary and replica memory agree page-for-page
/// after every checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryDelta {
    entries: Vec<(PageId, PageVersion)>,
}

impl MemoryDelta {
    /// An empty delta.
    pub fn new() -> Self {
        MemoryDelta::default()
    }

    /// Creates a delta from `(page, version)` pairs.
    pub fn from_entries(entries: Vec<(PageId, PageVersion)>) -> Self {
        MemoryDelta { entries }
    }

    /// Appends one page.
    pub fn push(&mut self, page: PageId, version: PageVersion) {
        self.entries.push((page, version));
    }

    /// Number of pages carried.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no pages are carried.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The carried entries.
    pub fn entries(&self) -> &[(PageId, PageVersion)] {
        &self.entries
    }

    /// Clears the delta, keeping its allocation — checkpoint pools reuse
    /// one delta across rounds instead of allocating per checkpoint.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Reserves room for at least `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Splits the entries into at most `lanes` contiguous, near-equal
    /// slices — the per-worker shards of the parallel encode path. Returns
    /// fewer slices when the delta has fewer entries than lanes, and none
    /// when it is empty.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn shards(&self, lanes: usize) -> Vec<&[(PageId, PageVersion)]> {
        assert!(lanes > 0, "at least one shard lane is required");
        if self.entries.is_empty() {
            return Vec::new();
        }
        let per_lane = self.entries.len().div_ceil(lanes);
        self.entries.chunks(per_lane).collect()
    }

    /// The *logical* payload size: dirty pages are 4 KiB each on the wire
    /// regardless of our compressed in-simulator representation.
    pub fn logical_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.entries.len() as u64 * here_hypervisor::PAGE_SIZE)
    }

    /// Merges `other` into `self`, keeping the later version when both
    /// carry the same frame.
    pub fn merge(&mut self, other: MemoryDelta) {
        self.entries.extend(other.entries);
        // Keep only the newest record per frame (stable: last write wins).
        self.entries.sort_by_key(|&(p, v)| (p, v.version));
        self.entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                // `earlier` is kept by dedup_by; overwrite it with the
                // higher-versioned record (later in sort order).
                *earlier = *later;
                true
            } else {
                false
            }
        });
    }
}

impl FromIterator<(PageId, PageVersion)> for MemoryDelta {
    fn from_iter<I: IntoIterator<Item = (PageId, PageVersion)>>(iter: I) -> Self {
        MemoryDelta {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(version: u32) -> PageVersion {
        PageVersion {
            version,
            last_writer: 0,
        }
    }

    #[test]
    fn delta_logical_size_counts_full_pages() {
        let mut d = MemoryDelta::new();
        d.push(PageId::new(1), pv(1));
        d.push(PageId::new(2), pv(1));
        assert_eq!(d.logical_bytes(), ByteSize::from_kib(8));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn delta_merge_keeps_newest_version() {
        let mut a =
            MemoryDelta::from_entries(vec![(PageId::new(1), pv(1)), (PageId::new(2), pv(3))]);
        let b = MemoryDelta::from_entries(vec![(PageId::new(1), pv(5)), (PageId::new(3), pv(1))]);
        a.merge(b);
        assert_eq!(a.len(), 3);
        let got: Vec<(u64, u32)> = a
            .entries()
            .iter()
            .map(|&(p, v)| (p.frame(), v.version))
            .collect();
        assert_eq!(got, vec![(1, 5), (2, 3), (3, 1)]);
    }

    #[test]
    fn delta_collects_from_iterator() {
        let d: MemoryDelta = (0..4).map(|f| (PageId::new(f), pv(1))).collect();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }
}
