//! Runtime-selected wide kernels for the data plane's byte-at-a-time
//! hot loops.
//!
//! Two inner loops dominate encode/decode wall time once framing is
//! zero-copy: folding record bytes into the [`StreamingChecksum`] and
//! comparing a decoded 4 KiB page payload against its expected image.
//! Both used to walk one byte per iteration. This module lifts them
//! behind the [`WideOps`] trait with three implementations:
//!
//! - [`ScalarOps`] — the byte-serial reference. Every other
//!   implementation must produce bit-identical results to it; the
//!   equivalence proptests below pin that.
//! - [`WideWordOps`] — portable word-wide kernels: eight checksum bytes
//!   per multiply with a 4× unrolled fold loop, and 16-byte (`u128`)
//!   compare strides. No `unsafe`, works on every architecture.
//! - [`Sse2Ops`] (x86-64 only) — the same fold loop plus an SSE2
//!   `bytes_equal` comparing 16 bytes per vector op, selected only when
//!   the CPU reports SSE2 at runtime.
//!
//! The FNV-style fold is a strict sequential dependency chain
//! (`state = (state ^ word) * prime`), so no implementation may
//! reorder or lane-split the folds — wide variants win by moving more
//! bytes per fold and cutting loop overhead, not by parallelising the
//! chain. That is what keeps every digest bit-identical to the scalar
//! reference.
//!
//! [`StreamingChecksum`]: crate::wire::StreamingChecksum

use std::sync::OnceLock;

const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fold64(state: u64, word: u64) -> u64 {
    (state ^ word).wrapping_mul(FNV64_PRIME)
}

/// Wide kernels for the two hot loops, with a scalar reference fallback.
///
/// Implementations must be pure: same inputs, same outputs, on every
/// host — results feed checksums that cross the simulated wire.
pub trait WideOps: Send + Sync {
    /// Folds the longest multiple-of-8 prefix of `bytes` into `state` as
    /// little-endian `u64` words. Returns the new state and the number
    /// of bytes consumed (`bytes.len() - bytes.len() % 8`).
    fn fold_words(&self, state: u64, bytes: &[u8]) -> (u64, usize);

    /// `true` when `a` and `b` hold identical bytes.
    fn bytes_equal(&self, a: &[u8], b: &[u8]) -> bool;

    /// Implementation name, surfaced in diagnostics.
    fn name(&self) -> &'static str;
}

/// Byte-serial reference implementation (v1-era loops).
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarOps;

impl WideOps for ScalarOps {
    fn fold_words(&self, mut state: u64, bytes: &[u8]) -> (u64, usize) {
        let consumed = bytes.len() - bytes.len() % 8;
        for chunk in bytes[..consumed].chunks_exact(8) {
            let mut word = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            state = fold64(state, word);
        }
        (state, consumed)
    }

    fn bytes_equal(&self, a: &[u8], b: &[u8]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        for (x, y) in a.iter().zip(b.iter()) {
            if x != y {
                return false;
            }
        }
        true
    }

    fn name(&self) -> &'static str {
        "scalar"
    }
}

/// Portable word-wide implementation: `u64` folds unrolled 4×, `u128`
/// compare strides. The compiler lowers both to vector loads where the
/// target supports them.
#[derive(Debug, Default, Clone, Copy)]
pub struct WideWordOps;

#[inline]
fn word_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
}

fn fold_words_wide(mut state: u64, bytes: &[u8]) -> (u64, usize) {
    let consumed = bytes.len() - bytes.len() % 8;
    let mut at = 0;
    // The fold chain is sequential; unrolling only amortises bounds
    // checks and loop control across four folds.
    while at + 32 <= consumed {
        state = fold64(state, word_at(bytes, at));
        state = fold64(state, word_at(bytes, at + 8));
        state = fold64(state, word_at(bytes, at + 16));
        state = fold64(state, word_at(bytes, at + 24));
        at += 32;
    }
    while at < consumed {
        state = fold64(state, word_at(bytes, at));
        at += 8;
    }
    (state, consumed)
}

fn bytes_equal_u128(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut at = 0;
    while at + 16 <= a.len() {
        let x = u128::from_le_bytes(a[at..at + 16].try_into().expect("16-byte slice"));
        let y = u128::from_le_bytes(b[at..at + 16].try_into().expect("16-byte slice"));
        if x != y {
            return false;
        }
        at += 16;
    }
    a[at..] == b[at..]
}

impl WideOps for WideWordOps {
    fn fold_words(&self, state: u64, bytes: &[u8]) -> (u64, usize) {
        fold_words_wide(state, bytes)
    }

    fn bytes_equal(&self, a: &[u8], b: &[u8]) -> bool {
        bytes_equal_u128(a, b)
    }

    fn name(&self) -> &'static str {
        "wide-word"
    }
}

/// x86-64 SSE2 implementation: the wide fold loop plus a vectorised
/// 16-bytes-per-op compare. Only selected when the CPU reports SSE2.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Default, Clone, Copy)]
pub struct Sse2Ops;

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn bytes_equal_sse2(a: &[u8], b: &[u8]) -> bool {
    use std::arch::x86_64::{_mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8};
    if a.len() != b.len() {
        return false;
    }
    let mut at = 0;
    while at + 16 <= a.len() {
        // SAFETY: `at + 16 <= len` bounds both unaligned 16-byte loads.
        let x = _mm_loadu_si128(a.as_ptr().add(at).cast());
        let y = _mm_loadu_si128(b.as_ptr().add(at).cast());
        if _mm_movemask_epi8(_mm_cmpeq_epi8(x, y)) != 0xffff {
            return false;
        }
        at += 16;
    }
    a[at..] == b[at..]
}

#[cfg(target_arch = "x86_64")]
impl WideOps for Sse2Ops {
    fn fold_words(&self, state: u64, bytes: &[u8]) -> (u64, usize) {
        fold_words_wide(state, bytes)
    }

    fn bytes_equal(&self, a: &[u8], b: &[u8]) -> bool {
        // SAFETY: `Sse2Ops` is only selected after `is_x86_feature_detected!`
        // confirmed SSE2 support (see `select`).
        unsafe { bytes_equal_sse2(a, b) }
    }

    fn name(&self) -> &'static str {
        "sse2"
    }
}

fn select() -> &'static dyn WideOps {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            static OPS: Sse2Ops = Sse2Ops;
            return &OPS;
        }
    }
    static OPS: WideWordOps = WideWordOps;
    &OPS
}

/// The implementation active on this host, selected once at first use.
pub fn active() -> &'static dyn WideOps {
    static ACTIVE: OnceLock<&'static dyn WideOps> = OnceLock::new();
    *ACTIVE.get_or_init(select)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn impls() -> Vec<Box<dyn WideOps>> {
        let mut v: Vec<Box<dyn WideOps>> = vec![Box::new(ScalarOps), Box::new(WideWordOps)];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("sse2") {
            v.push(Box::new(Sse2Ops));
        }
        v
    }

    #[test]
    fn active_is_a_wide_implementation() {
        // Every CI/dev target we build on has at least the portable wide
        // path; the scalar reference exists for equivalence testing only.
        assert_ne!(active().name(), "scalar");
    }

    #[test]
    fn fold_consumes_the_aligned_prefix_only() {
        for ops in impls() {
            let bytes = [1u8; 21];
            let (_, consumed) = ops.fold_words(7, &bytes);
            assert_eq!(consumed, 16, "{}", ops.name());
            let (_, consumed) = ops.fold_words(7, &bytes[..8]);
            assert_eq!(consumed, 8, "{}", ops.name());
            let (state, consumed) = ops.fold_words(7, &bytes[..3]);
            assert_eq!((state, consumed), (7, 0), "{}", ops.name());
        }
    }

    #[test]
    fn compare_rejects_length_mismatch() {
        for ops in impls() {
            assert!(!ops.bytes_equal(&[1, 2, 3], &[1, 2]), "{}", ops.name());
            assert!(ops.bytes_equal(&[], &[]), "{}", ops.name());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn wide_folds_match_scalar(
            state in any::<u64>(),
            bytes in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let reference = ScalarOps.fold_words(state, &bytes);
            for ops in impls() {
                prop_assert_eq!(ops.fold_words(state, &bytes), reference, "{}", ops.name());
            }
        }

        #[test]
        fn wide_folds_match_scalar_unaligned(
            state in any::<u64>(),
            bytes in proptest::collection::vec(any::<u8>(), 64..256),
            offset in 0usize..8,
        ) {
            // Odd start offsets exercise unaligned loads in every stride.
            let view = &bytes[offset.min(bytes.len())..];
            let reference = ScalarOps.fold_words(state, view);
            for ops in impls() {
                prop_assert_eq!(ops.fold_words(state, view), reference, "{}", ops.name());
            }
        }

        #[test]
        fn wide_compare_matches_scalar(
            a in proptest::collection::vec(any::<u8>(), 0..160),
            flip in proptest::option::of((0usize..160, 1u8..=255)),
        ) {
            let mut b = a.clone();
            if let Some((at, bit)) = flip {
                if !b.is_empty() {
                    let at = at % b.len();
                    b[at] ^= bit;
                }
            }
            let reference = ScalarOps.bytes_equal(&a, &b);
            for ops in impls() {
                prop_assert_eq!(ops.bytes_equal(&a, &b), reference, "{}", ops.name());
            }
        }
    }
}
