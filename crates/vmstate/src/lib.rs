//! # here-vmstate — VM state translation between heterogeneous hypervisors
//!
//! The state-translator substrate of the HERE reproduction (§5.3, §7.4).
//! Checkpoints captured on one hypervisor are in that hypervisor's native
//! formats; before they can be restored on a *different* hypervisor they
//! must pass through a common intermediate representation:
//!
//! - [`cir`]: the hypervisor-neutral Common Intermediate Representation of
//!   vCPU, platform, device and memory state;
//! - [`translate`]: the [`StateTranslator`](translate::StateTranslator)
//!   doing Xen ⇄ CIR ⇄ KVM conversion, plus the device-set switch;
//! - [`compat`]: CPUID/platform reconciliation so the guest never observes
//!   a feature disappearing across a failover;
//! - [`wire`]: the versioned, checksummed binary record stream the
//!   replication engines exchange.
//!
//! ## Example
//!
//! ```
//! use here_hypervisor::arch::ArchRegs;
//! use here_hypervisor::kind::HypervisorKind;
//! use here_hypervisor::vcpu::{VcpuStateBlob, XenVcpuState};
//! use here_vmstate::translate::StateTranslator;
//!
//! let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm)?;
//! let captured = VcpuStateBlob::Xen(XenVcpuState::from_arch(&ArchRegs::reset_state(), true));
//! let for_kvm = translator.translate_vcpu(&captured)?;
//! assert_eq!(for_kvm.to_arch(), captured.to_arch());
//! # Ok::<(), here_vmstate::translate::TranslateError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cir;
pub mod compat;
pub mod simd;
pub mod translate;
pub mod wire;

pub use cir::{CpuStateCir, MachineStateCir, MemoryDelta};
pub use compat::{check_resumable, reconcile, PlatformContract};
pub use translate::{StateTranslator, TranslateError};
pub use wire::{Record, StreamDecoder, StreamEncoder, WireError};
