//! Platform compatibility reconciliation between replication peers.
//!
//! "HERE ensures virtualization compatibility between both hypervisors by
//! adjusting platform features as necessary" (§5.3): before replication
//! starts, the two hosts' CPUID policies are intersected and the common
//! policy is what the protected VM boots with, so no feature the guest has
//! observed can vanish on failover.

use std::error::Error;
use std::fmt;

use here_hypervisor::cpuid::{CpuFeature, CpuidPolicy};

/// Errors raised by compatibility checking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompatError {
    /// The guest's policy exposes features the target host cannot provide;
    /// resuming there would let the guest execute unsupported instructions.
    MissingFeatures(Vec<CpuFeature>),
    /// The two hosts disagree on non-maskable platform properties.
    PlatformMismatch(String),
}

impl fmt::Display for CompatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompatError::MissingFeatures(features) => {
                write!(f, "target host lacks guest-visible features: {features:?}")
            }
            CompatError::PlatformMismatch(msg) => write!(f, "platform mismatch: {msg}"),
        }
    }
}

impl Error for CompatError {}

/// The reconciled platform contract both hosts agree to honour.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformContract {
    /// The feature policy to install on the protected VM.
    pub cpuid: CpuidPolicy,
    /// Features each side had to mask to reach agreement (diagnostics).
    pub masked_on_primary: Vec<CpuFeature>,
    /// Features masked relative to the secondary's default.
    pub masked_on_secondary: Vec<CpuFeature>,
}

/// Computes the platform contract for a primary/secondary pair.
///
/// # Examples
///
/// ```
/// use here_hypervisor::cpuid::CpuidPolicy;
/// use here_vmstate::compat::reconcile;
///
/// let contract = reconcile(&CpuidPolicy::xen_default(), &CpuidPolicy::kvm_default());
/// assert!(contract.cpuid.is_subset_of(&CpuidPolicy::xen_default()));
/// assert!(contract.cpuid.is_subset_of(&CpuidPolicy::kvm_default()));
/// ```
///
/// # Panics
///
/// Panics if the hosts have different CPU vendors (heterogeneous hardware
/// is the paper's stated future work, §8.1).
pub fn reconcile(primary: &CpuidPolicy, secondary: &CpuidPolicy) -> PlatformContract {
    let common = primary.intersect(secondary);
    PlatformContract {
        masked_on_primary: primary.lost_versus(&common),
        masked_on_secondary: secondary.lost_versus(&common),
        cpuid: common,
    }
}

/// Verifies that a guest running with `guest_policy` can safely resume on a
/// host offering `host_policy`.
///
/// # Errors
///
/// Returns [`CompatError::MissingFeatures`] listing every guest-visible
/// feature the host lacks.
pub fn check_resumable(
    guest_policy: &CpuidPolicy,
    host_policy: &CpuidPolicy,
) -> Result<(), CompatError> {
    if guest_policy.vendor != host_policy.vendor {
        return Err(CompatError::PlatformMismatch(format!(
            "guest vendor {} vs host vendor {}",
            guest_policy.vendor, host_policy.vendor
        )));
    }
    let missing = guest_policy.lost_versus(host_policy);
    if missing.is_empty() {
        Ok(())
    } else {
        Err(CompatError::MissingFeatures(missing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconciled_contract_is_resumable_on_both_sides() {
        let xen = CpuidPolicy::xen_default();
        let kvm = CpuidPolicy::kvm_default();
        let contract = reconcile(&xen, &kvm);
        assert!(check_resumable(&contract.cpuid, &xen).is_ok());
        assert!(check_resumable(&contract.cpuid, &kvm).is_ok());
        // Each side masked something (the defaults genuinely differ).
        assert!(!contract.masked_on_primary.is_empty());
        assert!(!contract.masked_on_secondary.is_empty());
    }

    #[test]
    fn unreconciled_guest_cannot_resume_on_kvm() {
        let xen = CpuidPolicy::xen_default();
        let kvm = CpuidPolicy::kvm_default();
        let err = check_resumable(&xen, &kvm).unwrap_err();
        match err {
            CompatError::MissingFeatures(missing) => {
                assert!(missing.contains(&CpuFeature::Avx512f));
                assert!(missing.contains(&CpuFeature::Tsx));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn vendor_mismatch_is_a_platform_error() {
        let intel = CpuidPolicy::new("GenuineIntel", 1);
        let amd = CpuidPolicy::new("AuthenticAMD", 1);
        assert!(matches!(
            check_resumable(&intel, &amd),
            Err(CompatError::PlatformMismatch(_))
        ));
    }
}
