//! The versioned binary checkpoint stream codec.
//!
//! Replication traffic between the primary and secondary replication
//! engines is a record stream: a header identifying the source, then
//! repeated checkpoint rounds of page batches, vCPU states and device
//! identities, each round closed by an end-record carrying a checksum, and
//! acknowledged by the receiver. Every record is individually length-framed
//! and checksummed so a corrupted or truncated stream is detected instead
//! of silently building a diverged replica.
//!
//! The paper's own stream is libxc's migration v2 format extended for
//! kvmtool; ours is an original format serving the same role.
//!
//! Version 2 of the format grew a zero-copy data plane: records are framed
//! in place (tag + length + checksum patched over placeholders after the
//! payload is written, so no per-record scratch buffer exists), checksums
//! are the word-folded streaming [`StreamingChecksum`] instead of the
//! byte-serial FNV-1a of v1, page *content* travels in [`PageDataBatch`]
//! records (tag `0x08`) whose 4 KiB payloads decode as zero-copy [`Bytes`]
//! slices, and a stream may be a [`ScatterStream`] — an ordered list of
//! independently encoded segments that the decoder walks without ever
//! splicing them into one contiguous buffer. Per-worker encode lanes each
//! fill their own pooled `BytesMut` and the transfer stage just collects
//! the frozen segments.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use here_hypervisor::arch::{ArchRegs, Segment, GPR_COUNT};
use here_hypervisor::devices::DeviceIdentity;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::memory::{PageId, PageVersion, PAGE_SIZE};

use crate::cir::{CpuStateCir, MemoryDelta};

/// Stream magic: `"HERE"`.
pub const MAGIC: u32 = 0x4845_5245;
/// Current stream format version (2: in-place framing, word-folded
/// checksums, scatter-gather segments, page-content batches).
pub const VERSION: u16 = 2;
/// Opt-in stream format version 3: epoch-delta page columns.
///
/// A v3 stream may carry [`Record::PageColumns`] records — a columnar
/// page layout (all frame gaps contiguous, then the run-length-encoded
/// mode column, then versions, then writers, then all payloads) encoded
/// against a named *delta base epoch*, with zero-page suppression and
/// sparse XOR deltas for low-entropy rewrites. v2 streams remain fully
/// decodable; sessions negotiate the version per replica.
pub const VERSION_V3: u16 = 3;

/// Bytes of content carried per page in a [`PageDataBatch`] record.
pub const PAGE_CONTENT_BYTES: usize = PAGE_SIZE as usize;

/// Per-page metadata bytes on the wire (frame `u64` + version `u32` +
/// last-writer `u16`).
pub const PAGE_META_BYTES: usize = 14;

/// Errors raised while decoding a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The stream does not begin with the `HERE` magic.
    BadMagic(u32),
    /// The stream version is newer than this decoder understands.
    UnsupportedVersion(u16),
    /// The stream ended in the middle of a record.
    Truncated,
    /// An unknown record type byte was encountered.
    UnknownRecord(u8),
    /// A record's checksum did not match its payload.
    ChecksumMismatch {
        /// Checksum carried by the record.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
    /// A record payload was structurally invalid.
    BadPayload(&'static str),
    /// A v3 page-columns record named a delta base epoch the receiver does
    /// not hold, so its XOR deltas cannot be applied.
    DeltaBaseMismatch {
        /// Base epoch the stream encoded against.
        stream_base: u64,
        /// Committed epoch the receiver actually holds.
        replica_base: u64,
    },
    /// The stream preamble carries a version other than the one negotiated
    /// for this session — e.g. a v2 frame arriving after v3 was agreed.
    StaleVersion {
        /// Version negotiated for the session.
        negotiated: u16,
        /// Version the stream actually carries.
        actual: u16,
    },
    /// The meta column of a page-columns record failed its own checksum.
    MetaColumnCorrupt {
        /// Checksum carried by the record header.
        expected: u32,
        /// Checksum computed over the received meta column.
        actual: u32,
    },
    /// The payload column of a page-columns record failed its own checksum.
    PayloadColumnCorrupt {
        /// Checksum carried by the record header.
        expected: u32,
        /// Checksum computed over the received payload column.
        actual: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad stream magic {m:#010x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported stream version {v}"),
            WireError::Truncated => write!(f, "stream truncated mid-record"),
            WireError::UnknownRecord(t) => write!(f, "unknown record type {t:#04x}"),
            WireError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "record checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            WireError::BadPayload(msg) => write!(f, "bad record payload: {msg}"),
            WireError::DeltaBaseMismatch {
                stream_base,
                replica_base,
            } => {
                write!(
                    f,
                    "delta base mismatch: stream encoded against epoch {stream_base}, \
                     replica holds epoch {replica_base}"
                )
            }
            WireError::StaleVersion { negotiated, actual } => {
                write!(
                    f,
                    "stale stream version: negotiated v{negotiated}, got v{actual}"
                )
            }
            WireError::MetaColumnCorrupt { expected, actual } => {
                write!(
                    f,
                    "meta column checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            WireError::PayloadColumnCorrupt { expected, actual } => {
                write!(
                    f,
                    "payload column checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
        }
    }
}

impl Error for WireError {}

/// Convenience alias for wire results.
pub type WireResult<T> = Result<T, WireError>;

/// A decoded stream record.
///
/// `PageBatch` dwarfs the control records by design — a checkpoint is
/// almost entirely pages — and records are built in place, never moved
/// through hot paths, so boxing the batch would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Stream preamble: who is sending and what VM this is.
    StreamHeader {
        /// Format of the *source* hypervisor's native blobs.
        source: HypervisorKind,
        /// VM name.
        vm_name: String,
        /// Guest memory size in bytes.
        memory_bytes: u64,
        /// Number of vCPUs.
        vcpus: u32,
    },
    /// Opens checkpoint round `seq`.
    CheckpointBegin {
        /// Checkpoint sequence number.
        seq: u64,
    },
    /// A batch of memory pages (metadata only: frame + version).
    PageBatch(MemoryDelta),
    /// A batch of memory pages carrying their materialized 4 KiB contents.
    PageDataBatch(PageDataBatch),
    /// A v3 columnar page batch, delta-encoded against a base epoch.
    PageColumns(PageColumnsBatch),
    /// One vCPU's state in the common format.
    VcpuState {
        /// vCPU index.
        index: u32,
        /// Common-format CPU state.
        cir: CpuStateCir,
    },
    /// One device's stable identity.
    Device(DeviceIdentity),
    /// Closes checkpoint round `seq`.
    CheckpointEnd {
        /// Checkpoint sequence number.
        seq: u64,
        /// Total pages sent in the round (receiver cross-checks).
        pages_total: u64,
    },
    /// Receiver acknowledgement of round `seq` (flows backwards).
    Ack {
        /// Acknowledged checkpoint sequence number.
        seq: u64,
    },
}

const TAG_HEADER: u8 = 0x01;
const TAG_CKPT_BEGIN: u8 = 0x02;
const TAG_PAGE_BATCH: u8 = 0x03;
const TAG_VCPU: u8 = 0x04;
const TAG_DEVICE: u8 = 0x05;
const TAG_CKPT_END: u8 = 0x06;
const TAG_ACK: u8 = 0x07;
const TAG_PAGE_DATA: u8 = 0x08;
const TAG_PAGE_COLUMNS: u8 = 0x09;

/// A decoded batch of pages with materialized contents.
///
/// On the wire each page is 14 metadata bytes followed by its 4 KiB
/// content, interleaved so an encode worker can stream pages one at a time
/// (see [`PageDataWriter`]); the batch carries no explicit count — the
/// record length must be a multiple of the per-page stride. Decoded
/// contents are zero-copy [`Bytes`] slices into the received segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PageDataBatch {
    pages: Vec<(PageId, PageVersion, Bytes)>,
}

impl PageDataBatch {
    /// Empty batch.
    pub fn new() -> Self {
        PageDataBatch { pages: Vec::new() }
    }

    /// Empty batch with room for `cap` pages.
    pub fn with_capacity(cap: usize) -> Self {
        PageDataBatch {
            pages: Vec::with_capacity(cap),
        }
    }

    /// Appends one page.
    ///
    /// # Panics
    ///
    /// Panics if `content` is not exactly [`PAGE_CONTENT_BYTES`] long.
    pub fn push(&mut self, page: PageId, rec: PageVersion, content: Bytes) {
        assert_eq!(
            content.len(),
            PAGE_CONTENT_BYTES,
            "page content must be exactly one page"
        );
        self.pages.push((page, rec, content));
    }

    /// Number of pages in the batch.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The pages in wire order.
    pub fn pages(&self) -> &[(PageId, PageVersion, Bytes)] {
        &self.pages
    }

    /// Consumes the batch into its pages.
    pub fn into_pages(self) -> Vec<(PageId, PageVersion, Bytes)> {
        self.pages
    }
}

/// Fixed self-describing header of a v3 page-columns record payload:
/// base epoch `u64` + page count `u32` + meta column length `u32` +
/// payload column length `u32` + meta column checksum `u32` + payload
/// column checksum `u32`.
///
/// This mirrors the postmortem bundle's `len=`/`crc=` header discipline:
/// the record's *frame* checksum covers only this header, and each column
/// carries its own digest, so a flipped bit in the meta column and one in
/// the payload column are reported as distinct errors.
pub const COLUMNS_HEADER_BYTES: usize = 28;

const MODE_META: u8 = 0;
const MODE_ZERO: u8 = 1;
const MODE_FULL: u8 = 2;
const MODE_DELTA: u8 = 3;

/// Per-page payload of a v3 page-columns record.
#[derive(Debug, Clone, PartialEq)]
pub enum PagePayload {
    /// Metadata only — the page's content does not travel (the session's
    /// virtual data plane models content cost without materializing it).
    Meta,
    /// The page is entirely zero; no bytes travel.
    Zero,
    /// Full 4 KiB content, for first-touch pages and high-entropy deltas.
    Full(Bytes),
    /// Sparse XOR runs against the base-epoch copy of the page: each run
    /// is `(byte offset, xor bytes)`; untouched bytes keep the base value.
    /// An empty run list re-asserts the base content unchanged.
    Delta(Vec<(u32, Bytes)>),
}

impl PagePayload {
    /// Reconstructs the page content, given the base-epoch copy when one
    /// is required.
    ///
    /// Returns `Ok(None)` for [`PagePayload::Meta`] (nothing to apply).
    ///
    /// # Errors
    ///
    /// [`WireError::BadPayload`] if a delta payload has no base to apply
    /// against or a run falls outside the page.
    pub fn materialize(&self, base: Option<&[u8]>) -> WireResult<Option<Vec<u8>>> {
        match self {
            PagePayload::Meta => Ok(None),
            PagePayload::Zero => Ok(Some(vec![0u8; PAGE_CONTENT_BYTES])),
            PagePayload::Full(content) => Ok(Some(content.to_vec())),
            PagePayload::Delta(runs) => {
                let base = base.ok_or(WireError::BadPayload(
                    "delta page arrived without a base copy",
                ))?;
                if base.len() != PAGE_CONTENT_BYTES {
                    return Err(WireError::BadPayload("delta base is not one page"));
                }
                let mut out = base.to_vec();
                for (offset, xor) in runs {
                    let start = *offset as usize;
                    let end = start + xor.len();
                    if end > PAGE_CONTENT_BYTES {
                        return Err(WireError::BadPayload("delta run out of page bounds"));
                    }
                    for (dst, &x) in out[start..end].iter_mut().zip(xor.iter()) {
                        *dst ^= x;
                    }
                }
                Ok(Some(out))
            }
        }
    }
}

/// Gap under which adjacent differing-byte runs are merged into one run,
/// trading a few identical bytes re-sent for fewer per-run headers.
const DELTA_RUN_MERGE_GAP: usize = 8;
/// A sparse delta above this encoded size falls back to a full page.
const DELTA_MAX_BYTES: usize = PAGE_CONTENT_BYTES / 2;

/// Classifies a page's content against its (optional) base-epoch copy:
/// all-zero pages are suppressed entirely, low-entropy rewrites become
/// sparse XOR runs, and first-touch or high-entropy pages travel whole.
///
/// # Panics
///
/// Panics if `content` (or a provided `base`) is not exactly one page.
pub fn classify_page(content: &[u8], base: Option<&[u8]>) -> PagePayload {
    assert_eq!(
        content.len(),
        PAGE_CONTENT_BYTES,
        "page content must be exactly one page"
    );
    if content.iter().all(|&b| b == 0) {
        return PagePayload::Zero;
    }
    if let Some(base) = base {
        assert_eq!(
            base.len(),
            PAGE_CONTENT_BYTES,
            "delta base must be exactly one page"
        );
        if let Some(runs) = sparse_xor_runs(content, base) {
            return PagePayload::Delta(runs);
        }
    }
    PagePayload::Full(Bytes::from(content.to_vec()))
}

fn sparse_xor_runs(content: &[u8], base: &[u8]) -> Option<Vec<(u32, Bytes)>> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < content.len() {
        if content[i] == base[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < content.len() && content[i] != base[i] {
            i += 1;
        }
        match spans.last_mut() {
            Some(last) if start - last.1 <= DELTA_RUN_MERGE_GAP => last.1 = i,
            _ => spans.push((start, i)),
        }
    }
    let cost: usize = spans.iter().map(|&(s, e)| 4 + (e - s)).sum();
    if cost > DELTA_MAX_BYTES {
        return None;
    }
    Some(
        spans
            .into_iter()
            .map(|(s, e)| {
                let xored: Vec<u8> = content[s..e]
                    .iter()
                    .zip(&base[s..e])
                    .map(|(&c, &b)| c ^ b)
                    .collect();
                (s as u32, Bytes::from(xored))
            })
            .collect(),
    )
}

/// A v3 columnar page batch, delta-encoded against a named base epoch.
///
/// On the wire the batch is laid out column by column — frame gaps, then
/// the run-length-encoded mode column, then versions, then writers, then
/// all payloads — behind the self-describing [`COLUMNS_HEADER_BYTES`]
/// header, so decode walks each column sequentially instead of striding
/// through interleaved per-page records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PageColumnsBatch {
    base_epoch: u64,
    entries: Vec<(PageId, PageVersion, PagePayload)>,
}

impl PageColumnsBatch {
    /// Empty batch encoded against `base_epoch`.
    pub fn new(base_epoch: u64) -> Self {
        PageColumnsBatch {
            base_epoch,
            entries: Vec::new(),
        }
    }

    /// Metadata-only batch straight from a delta-entry slice.
    pub fn from_metas(base_epoch: u64, entries: &[(PageId, PageVersion)]) -> Self {
        PageColumnsBatch {
            base_epoch,
            entries: entries
                .iter()
                .map(|&(page, rec)| (page, rec, PagePayload::Meta))
                .collect(),
        }
    }

    /// Appends one page.
    ///
    /// # Panics
    ///
    /// Panics if a [`PagePayload::Full`] payload is not exactly one page.
    pub fn push(&mut self, page: PageId, rec: PageVersion, payload: PagePayload) {
        if let PagePayload::Full(content) = &payload {
            assert_eq!(
                content.len(),
                PAGE_CONTENT_BYTES,
                "page content must be exactly one page"
            );
        }
        self.entries.push((page, rec, payload));
    }

    /// The committed epoch this batch's deltas are encoded against.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Number of pages in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The pages in wire order.
    pub fn entries(&self) -> &[(PageId, PageVersion, PagePayload)] {
        &self.entries
    }

    /// Consumes the batch into its pages.
    pub fn into_entries(self) -> Vec<(PageId, PageVersion, PagePayload)> {
        self.entries
    }

    /// Verifies the batch was encoded against the base epoch the receiver
    /// actually holds.
    ///
    /// # Errors
    ///
    /// [`WireError::DeltaBaseMismatch`] when the epochs disagree.
    pub fn check_base(&self, replica_base: u64) -> WireResult<()> {
        if self.base_epoch != replica_base {
            return Err(WireError::DeltaBaseMismatch {
                stream_base: self.base_epoch,
                replica_base,
            });
        }
        Ok(())
    }
}

fn put_varint(out: &mut BytesMut, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(b);
            return;
        }
        out.put_u8(b | 0x80);
    }
}

fn get_varint(p: &mut Bytes) -> WireResult<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if p.remaining() == 0 {
            return Err(WireError::Truncated);
        }
        let b = p.get_u8();
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError::BadPayload("varint overflows 64 bits"))
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn mode_of(payload: &PagePayload) -> u8 {
    match payload {
        PagePayload::Meta => MODE_META,
        PagePayload::Zero => MODE_ZERO,
        PagePayload::Full(_) => MODE_FULL,
        PagePayload::Delta(_) => MODE_DELTA,
    }
}

fn patch_columns_header(
    out: &mut BytesMut,
    header_at: usize,
    base_epoch: u64,
    count: u32,
    meta_at: usize,
    payload_at: usize,
) {
    let end = out.len();
    let meta_sum = checksum(&out[meta_at..payload_at]);
    let payload_sum = checksum(&out[payload_at..end]);
    let h = &mut out[header_at..header_at + COLUMNS_HEADER_BYTES];
    h[0..8].copy_from_slice(&base_epoch.to_be_bytes());
    h[8..12].copy_from_slice(&count.to_be_bytes());
    h[12..16].copy_from_slice(&((payload_at - meta_at) as u32).to_be_bytes());
    h[16..20].copy_from_slice(&((end - payload_at) as u32).to_be_bytes());
    h[20..24].copy_from_slice(&meta_sum.to_be_bytes());
    h[24..28].copy_from_slice(&payload_sum.to_be_bytes());
}

/// Encodes a v3 page-columns record in place. The frame checksum covers
/// only the fixed header; each column carries its own digest.
pub fn encode_page_columns_into(batch: &PageColumnsBatch, out: &mut BytesMut) {
    let frame_at = reserve_frame(out);
    let header_at = out.len();
    out.extend_from_slice(&[0u8; COLUMNS_HEADER_BYTES]);
    let meta_at = out.len();
    // Frame column: zigzag gaps from the previous frame (first from zero).
    let mut prev: i64 = 0;
    for (page, _, _) in &batch.entries {
        let f = page.frame() as i64;
        put_varint(out, zigzag(f.wrapping_sub(prev)));
        prev = f;
    }
    // Mode column, run-length encoded.
    let mut i = 0;
    while i < batch.entries.len() {
        let mode = mode_of(&batch.entries[i].2);
        let mut run = 1;
        while i + run < batch.entries.len() && mode_of(&batch.entries[i + run].2) == mode {
            run += 1;
        }
        out.put_u8(mode);
        put_varint(out, run as u64);
        i += run;
    }
    // Version and writer columns (absolute values, abort-safe).
    for (_, rec, _) in &batch.entries {
        put_varint(out, u64::from(rec.version));
    }
    for (_, rec, _) in &batch.entries {
        put_varint(out, u64::from(rec.last_writer));
    }
    let payload_at = out.len();
    for (_, _, payload) in &batch.entries {
        match payload {
            PagePayload::Meta | PagePayload::Zero => {}
            PagePayload::Full(content) => out.extend_from_slice(content),
            PagePayload::Delta(runs) => {
                put_varint(out, runs.len() as u64);
                for (offset, xor) in runs {
                    put_varint(out, u64::from(*offset));
                    put_varint(out, xor.len() as u64);
                    out.extend_from_slice(xor);
                }
            }
        }
    }
    patch_columns_header(
        out,
        header_at,
        batch.base_epoch,
        batch.entries.len() as u32,
        meta_at,
        payload_at,
    );
    let outer = checksum(&out[header_at..header_at + COLUMNS_HEADER_BYTES]);
    patch_frame(out, frame_at, header_at, TAG_PAGE_COLUMNS, outer);
}

/// Encodes a metadata-only v3 page-columns record straight from a delta
/// shard slice — the hot lane path, byte-identical to framing
/// [`PageColumnsBatch::from_metas`] but with no owned batch allocated.
pub fn encode_page_columns_meta_into(
    base_epoch: u64,
    entries: &[(PageId, PageVersion)],
    out: &mut BytesMut,
) {
    let frame_at = reserve_frame(out);
    let header_at = out.len();
    out.extend_from_slice(&[0u8; COLUMNS_HEADER_BYTES]);
    let meta_at = out.len();
    let mut prev: i64 = 0;
    for &(page, _) in entries {
        let f = page.frame() as i64;
        put_varint(out, zigzag(f.wrapping_sub(prev)));
        prev = f;
    }
    if !entries.is_empty() {
        out.put_u8(MODE_META);
        put_varint(out, entries.len() as u64);
    }
    for &(_, rec) in entries {
        put_varint(out, u64::from(rec.version));
    }
    for &(_, rec) in entries {
        put_varint(out, u64::from(rec.last_writer));
    }
    let payload_at = out.len();
    patch_columns_header(
        out,
        header_at,
        base_epoch,
        entries.len() as u32,
        meta_at,
        payload_at,
    );
    let outer = checksum(&out[header_at..header_at + COLUMNS_HEADER_BYTES]);
    patch_frame(out, frame_at, header_at, TAG_PAGE_COLUMNS, outer);
}

fn decode_page_columns(mut p: Bytes) -> WireResult<PageColumnsBatch> {
    if p.remaining() < COLUMNS_HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    let base_epoch = p.get_u64();
    let count = p.get_u32() as usize;
    let meta_len = p.get_u32() as usize;
    let payload_len = p.get_u32() as usize;
    let meta_sum = p.get_u32();
    let payload_sum = p.get_u32();
    if p.remaining() != meta_len + payload_len {
        return Err(WireError::BadPayload(
            "column lengths disagree with record length",
        ));
    }
    let mut meta = p.split_to(meta_len);
    let mut payload = p.split_to(payload_len);
    let actual = checksum(&meta);
    if actual != meta_sum {
        return Err(WireError::MetaColumnCorrupt {
            expected: meta_sum,
            actual,
        });
    }
    let actual = checksum(&payload);
    if actual != payload_sum {
        return Err(WireError::PayloadColumnCorrupt {
            expected: payload_sum,
            actual,
        });
    }
    let mut frames = Vec::with_capacity(count);
    let mut prev: i64 = 0;
    for _ in 0..count {
        let gap = unzigzag(get_varint(&mut meta)?);
        let f = prev
            .checked_add(gap)
            .filter(|f| *f >= 0)
            .ok_or(WireError::BadPayload("page frame gap out of range"))?;
        frames.push(f as u64);
        prev = f;
    }
    let mut modes = Vec::with_capacity(count);
    while modes.len() < count {
        if meta.remaining() == 0 {
            return Err(WireError::Truncated);
        }
        let mode = meta.get_u8();
        if mode > MODE_DELTA {
            return Err(WireError::BadPayload("unknown page mode"));
        }
        let run = get_varint(&mut meta)? as usize;
        if run == 0 || modes.len() + run > count {
            return Err(WireError::BadPayload("mode run overflows page count"));
        }
        for _ in 0..run {
            modes.push(mode);
        }
    }
    let mut versions = Vec::with_capacity(count);
    for _ in 0..count {
        let v = get_varint(&mut meta)?;
        versions.push(
            u32::try_from(v).map_err(|_| WireError::BadPayload("page version overflows u32"))?,
        );
    }
    let mut writers = Vec::with_capacity(count);
    for _ in 0..count {
        let w = get_varint(&mut meta)?;
        writers.push(
            u16::try_from(w).map_err(|_| WireError::BadPayload("page writer overflows u16"))?,
        );
    }
    if meta.remaining() > 0 {
        return Err(WireError::BadPayload("trailing bytes in meta column"));
    }
    let mut batch = PageColumnsBatch::new(base_epoch);
    for i in 0..count {
        let pay = match modes[i] {
            MODE_META => PagePayload::Meta,
            MODE_ZERO => PagePayload::Zero,
            MODE_FULL => {
                if payload.remaining() < PAGE_CONTENT_BYTES {
                    return Err(WireError::Truncated);
                }
                PagePayload::Full(payload.split_to(PAGE_CONTENT_BYTES))
            }
            _ => {
                let nruns = get_varint(&mut payload)? as usize;
                if nruns > PAGE_CONTENT_BYTES {
                    return Err(WireError::BadPayload("delta run count exceeds page size"));
                }
                let mut runs = Vec::with_capacity(nruns);
                for _ in 0..nruns {
                    let offset = get_varint(&mut payload)? as usize;
                    let len = get_varint(&mut payload)? as usize;
                    if offset + len > PAGE_CONTENT_BYTES {
                        return Err(WireError::BadPayload("delta run out of page bounds"));
                    }
                    if payload.remaining() < len {
                        return Err(WireError::Truncated);
                    }
                    runs.push((offset as u32, payload.split_to(len)));
                }
                PagePayload::Delta(runs)
            }
        };
        batch.entries.push((
            PageId::new(frames[i]),
            PageVersion {
                version: versions[i],
                last_writer: writers[i],
            },
            pay,
        ));
    }
    if payload.remaining() > 0 {
        return Err(WireError::BadPayload("trailing bytes in payload column"));
    }
    Ok(batch)
}

/// Byte-serial FNV-1a, the v1 record checksum.
///
/// Kept public as the *legacy reference* the datapath benchmark compares
/// against: it folds one byte per multiply and dominated encode cost on
/// 4 KiB payloads, which is why v2 switched to [`StreamingChecksum`].
pub fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fold64(state: u64, word: u64) -> u64 {
    (state ^ word).wrapping_mul(FNV64_PRIME)
}

/// Incremental word-folded checksum used for v2 record framing.
///
/// Folds eight input bytes per multiply (little-endian `u64` words) into a
/// 64-bit FNV-style state, then mixes the total length and folds the state
/// to 32 bits. The digest depends only on the byte *sequence*, never on how
/// `update` calls chunk it, so encode workers can hash page payloads as
/// they stream them into their lane buffers and still match the one-shot
/// [`checksum`] the decoder computes over the reassembled record.
#[derive(Debug, Clone)]
pub struct StreamingChecksum {
    state: u64,
    pending: u64,
    pending_len: u32,
    total: u64,
}

impl StreamingChecksum {
    /// Fresh hasher.
    pub fn new() -> Self {
        StreamingChecksum {
            state: FNV64_OFFSET,
            pending: 0,
            pending_len: 0,
            total: 0,
        }
    }

    /// Absorbs `bytes`; chunk boundaries do not affect the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        self.total += bytes.len() as u64;
        let mut rest = bytes;
        while self.pending_len > 0 && !rest.is_empty() {
            self.pending |= u64::from(rest[0]) << (8 * self.pending_len);
            self.pending_len += 1;
            rest = &rest[1..];
            if self.pending_len == 8 {
                self.state = fold64(self.state, self.pending);
                self.pending = 0;
                self.pending_len = 0;
            }
        }
        // The aligned body goes through the runtime-selected wide kernel;
        // every implementation folds the identical word sequence, so the
        // digest stays bit-equal to the byte-serial reference.
        let (state, consumed) = crate::simd::active().fold_words(self.state, rest);
        self.state = state;
        for &b in &rest[consumed..] {
            self.pending |= u64::from(b) << (8 * self.pending_len);
            self.pending_len += 1;
        }
    }

    /// Final 32-bit digest. Does not consume the hasher, so a lane can
    /// snapshot a running digest mid-stream.
    pub fn finish(&self) -> u32 {
        let mut state = self.state;
        if self.pending_len > 0 {
            // Pad marker disambiguates trailing zero bytes from absent ones.
            state = fold64(state, self.pending | 0x80u64 << (8 * self.pending_len));
        }
        state = fold64(state, self.total);
        (state ^ (state >> 32)) as u32
    }

    /// Bytes absorbed so far.
    pub fn bytes_hashed(&self) -> u64 {
        self.total
    }
}

impl Default for StreamingChecksum {
    fn default() -> Self {
        StreamingChecksum::new()
    }
}

/// One-shot v2 record checksum over a contiguous slice.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut c = StreamingChecksum::new();
    c.update(bytes);
    c.finish()
}

/// Encodes records into a byte stream.
///
/// # Examples
///
/// ```
/// use here_vmstate::wire::{Record, StreamEncoder, StreamDecoder};
///
/// let mut enc = StreamEncoder::new();
/// enc.push(&Record::CheckpointBegin { seq: 1 });
/// enc.push(&Record::CheckpointEnd { seq: 1, pages_total: 0 });
/// let bytes = enc.finish();
/// let mut dec = StreamDecoder::new(bytes)?;
/// assert_eq!(dec.next_record()?, Some(Record::CheckpointBegin { seq: 1 }));
/// # Ok::<(), here_vmstate::wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct StreamEncoder {
    buf: BytesMut,
}

impl StreamEncoder {
    /// Creates an encoder and writes the stream preamble (magic + version).
    pub fn new() -> Self {
        StreamEncoder::with_buffer(BytesMut::with_capacity(4096))
    }

    /// Creates an encoder over a recycled buffer (cleared first), keeping
    /// its allocation. This is how checkpoint buffer pools avoid a fresh
    /// allocation per round.
    pub fn with_buffer(mut buf: BytesMut) -> Self {
        buf.clear();
        write_preamble(&mut buf);
        StreamEncoder { buf }
    }

    /// Like [`with_buffer`](StreamEncoder::with_buffer), but stamping an
    /// explicit format version into the preamble (e.g. [`VERSION_V3`] for
    /// a negotiated v3 session).
    pub fn with_buffer_versioned(mut buf: BytesMut, version: u16) -> Self {
        buf.clear();
        write_preamble_versioned(&mut buf, version);
        StreamEncoder { buf }
    }

    /// Appends one record, framed in place (no scratch buffer).
    pub fn push(&mut self, record: &Record) {
        encode_record_into(record, &mut self.buf);
    }

    /// Bytes emitted so far (including preamble).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if only the preamble has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.len() == PREAMBLE_BYTES
    }

    /// Exposes the underlying buffer, e.g. to attach a [`PageDataWriter`].
    pub fn buffer_mut(&mut self) -> &mut BytesMut {
        &mut self.buf
    }

    /// Finalises the stream.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

impl Default for StreamEncoder {
    fn default() -> Self {
        StreamEncoder::new()
    }
}

/// Preamble length: magic `u32` + version `u16`.
pub const PREAMBLE_BYTES: usize = 6;

/// Frame header length: tag `u8` + payload length `u32` + checksum `u32`.
const FRAME_HEADER_BYTES: usize = 9;

/// Writes the stream preamble (magic + version) into `out`.
pub fn write_preamble(out: &mut BytesMut) {
    write_preamble_versioned(out, VERSION);
}

/// Writes a stream preamble carrying an explicit format version.
pub fn write_preamble_versioned(out: &mut BytesMut, version: u16) {
    out.put_u32(MAGIC);
    out.put_u16(version);
}

/// Patches a frame header written as placeholders at `frame_at`, once the
/// payload occupying `payload_at..out.len()` is complete.
fn patch_frame(out: &mut BytesMut, frame_at: usize, payload_at: usize, tag: u8, sum: u32) {
    let len = (out.len() - payload_at) as u32;
    out[frame_at] = tag;
    out[frame_at + 1..frame_at + 5].copy_from_slice(&len.to_be_bytes());
    out[frame_at + 5..frame_at + 9].copy_from_slice(&sum.to_be_bytes());
}

/// Reserves a frame header of placeholder bytes, returning its offset.
fn reserve_frame(out: &mut BytesMut) -> usize {
    let frame_at = out.len();
    out.put_u8(0);
    out.put_u32(0);
    out.put_u32(0);
    frame_at
}

/// Encodes one record directly into `out` with in-place framing: the
/// payload is written straight after placeholder header bytes, then tag,
/// length and checksum are patched over the placeholders. No intermediate
/// buffer, no copy.
pub fn encode_record_into(record: &Record, out: &mut BytesMut) {
    if let Record::PageColumns(batch) = record {
        // v3 columnar frames follow the header-only checksum discipline.
        encode_page_columns_into(batch, out);
        return;
    }
    let frame_at = reserve_frame(out);
    let payload_at = out.len();
    let tag = encode_payload(record, out);
    let sum = checksum(&out[payload_at..]);
    patch_frame(out, frame_at, payload_at, tag, sum);
}

/// Encodes a metadata-only page batch record straight from an entry slice,
/// so per-worker delta shards can be encoded without first cloning them
/// into an owned [`MemoryDelta`].
pub fn encode_page_batch_into(entries: &[(PageId, PageVersion)], out: &mut BytesMut) {
    let frame_at = reserve_frame(out);
    let payload_at = out.len();
    out.reserve(4 + entries.len() * PAGE_META_BYTES);
    out.put_u32(entries.len() as u32);
    for &(page, rec) in entries {
        out.put_u64(page.frame());
        out.put_u32(rec.version);
        out.put_u16(rec.last_writer);
    }
    let sum = checksum(&out[payload_at..]);
    patch_frame(out, frame_at, payload_at, TAG_PAGE_BATCH, sum);
}

/// Streams a [`PageDataBatch`] record into a lane buffer one page at a
/// time, hashing bytes as they are appended.
///
/// The record checksum is accumulated incrementally by a
/// [`StreamingChecksum`], so `finish` never re-reads the (potentially
/// multi-MiB) payload; it only patches the 9 placeholder header bytes.
/// Dropping the writer without calling [`finish`](PageDataWriter::finish)
/// leaves a zero-tag frame in the buffer, which the decoder rejects — a
/// half-written batch cannot masquerade as a valid record.
#[derive(Debug)]
pub struct PageDataWriter<'a> {
    out: &'a mut BytesMut,
    frame_at: usize,
    payload_at: usize,
    sum: StreamingChecksum,
    count: u64,
}

impl<'a> PageDataWriter<'a> {
    /// Opens a page-data record in `out`.
    pub fn new(out: &'a mut BytesMut) -> Self {
        let frame_at = reserve_frame(out);
        let payload_at = out.len();
        PageDataWriter {
            out,
            frame_at,
            payload_at,
            sum: StreamingChecksum::new(),
            count: 0,
        }
    }

    /// Appends one page's metadata and content.
    ///
    /// # Panics
    ///
    /// Panics if `content` is not exactly [`PAGE_CONTENT_BYTES`] long.
    pub fn push(&mut self, page: PageId, rec: PageVersion, content: &[u8]) {
        assert_eq!(
            content.len(),
            PAGE_CONTENT_BYTES,
            "page content must be exactly one page"
        );
        let meta_at = self.out.len();
        self.out.reserve(PAGE_META_BYTES + PAGE_CONTENT_BYTES);
        self.out.put_u64(page.frame());
        self.out.put_u32(rec.version);
        self.out.put_u16(rec.last_writer);
        self.sum.update(&self.out[meta_at..]);
        self.out.extend_from_slice(content);
        self.sum.update(content);
        self.count += 1;
    }

    /// Pages appended so far.
    pub fn pages(&self) -> u64 {
        self.count
    }

    /// Closes the record, patching the frame header; returns the page count.
    pub fn finish(self) -> u64 {
        patch_frame(
            self.out,
            self.frame_at,
            self.payload_at,
            TAG_PAGE_DATA,
            self.sum.finish(),
        );
        self.count
    }
}

/// An ordered sequence of independently encoded stream segments.
///
/// The parallel encode path produces one frozen [`Bytes`] segment per
/// worker lane (plus a head segment with the preamble and checkpoint-begin
/// record and a tail with vCPU/device/end records). Splicing them is just
/// collecting the segments in order — no concatenation copy ever happens;
/// [`StreamDecoder::new_scattered`] walks the segment list directly.
#[derive(Debug, Clone, Default)]
pub struct ScatterStream {
    segments: Vec<Bytes>,
    total: usize,
}

impl ScatterStream {
    /// Empty stream.
    pub fn new() -> Self {
        ScatterStream::default()
    }

    /// Appends a segment (empty segments are dropped).
    pub fn push(&mut self, segment: Bytes) {
        if !segment.is_empty() {
            self.total += segment.len();
            self.segments.push(segment);
        }
    }

    /// Total stream length in bytes across all segments.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the stream has no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segments in stream order.
    pub fn segments(&self) -> &[Bytes] {
        &self.segments
    }

    /// Consumes the stream into its segments.
    pub fn into_segments(self) -> Vec<Bytes> {
        self.segments
    }

    /// Copies the segments into one contiguous buffer. This is the only
    /// place a scatter stream is ever flattened; the hot path never calls
    /// it (tests and wire-level tools do).
    pub fn gather(&self) -> Bytes {
        let mut buf = Vec::with_capacity(self.total);
        for seg in &self.segments {
            buf.extend_from_slice(seg);
        }
        Bytes::from(buf)
    }
}

impl From<Bytes> for ScatterStream {
    fn from(bytes: Bytes) -> Self {
        let mut s = ScatterStream::new();
        s.push(bytes);
        s
    }
}

fn encode_payload(record: &Record, out: &mut BytesMut) -> u8 {
    match record {
        Record::StreamHeader {
            source,
            vm_name,
            memory_bytes,
            vcpus,
        } => {
            out.put_u8(match source {
                HypervisorKind::Xen => 0,
                HypervisorKind::Kvm => 1,
            });
            let name = vm_name.as_bytes();
            out.put_u16(name.len() as u16);
            out.extend_from_slice(name);
            out.put_u64(*memory_bytes);
            out.put_u32(*vcpus);
            TAG_HEADER
        }
        Record::CheckpointBegin { seq } => {
            out.put_u64(*seq);
            TAG_CKPT_BEGIN
        }
        Record::PageBatch(delta) => {
            out.put_u32(delta.len() as u32);
            for &(page, rec) in delta.entries() {
                out.put_u64(page.frame());
                out.put_u32(rec.version);
                out.put_u16(rec.last_writer);
            }
            TAG_PAGE_BATCH
        }
        Record::PageDataBatch(batch) => {
            out.reserve(batch.len() * (PAGE_META_BYTES + PAGE_CONTENT_BYTES));
            for (page, rec, content) in batch.pages() {
                out.put_u64(page.frame());
                out.put_u32(rec.version);
                out.put_u16(rec.last_writer);
                out.extend_from_slice(content);
            }
            TAG_PAGE_DATA
        }
        Record::PageColumns(_) => {
            unreachable!("page-columns records are framed by encode_page_columns_into")
        }
        Record::VcpuState { index, cir } => {
            out.put_u32(*index);
            out.put_u8(u8::from(cir.online));
            encode_arch_regs(&cir.regs, out);
            TAG_VCPU
        }
        Record::Device(identity) => {
            match identity {
                DeviceIdentity::Net { mac, mtu } => {
                    out.put_u8(0);
                    out.extend_from_slice(mac);
                    out.put_u16(*mtu);
                }
                DeviceIdentity::Block {
                    volume_id,
                    capacity_sectors,
                    read_only,
                } => {
                    out.put_u8(1);
                    out.put_u64(*volume_id);
                    out.put_u64(*capacity_sectors);
                    out.put_u8(u8::from(*read_only));
                }
                DeviceIdentity::Console => out.put_u8(2),
            }
            TAG_DEVICE
        }
        Record::CheckpointEnd { seq, pages_total } => {
            out.put_u64(*seq);
            out.put_u64(*pages_total);
            TAG_CKPT_END
        }
        Record::Ack { seq } => {
            out.put_u64(*seq);
            TAG_ACK
        }
    }
}

fn encode_arch_regs(regs: &ArchRegs, out: &mut BytesMut) {
    for &g in &regs.gprs {
        out.put_u64(g);
    }
    out.put_u64(regs.rip);
    out.put_u64(regs.rflags);
    for seg in [
        &regs.cs, &regs.ds, &regs.es, &regs.fs, &regs.gs, &regs.ss, &regs.tr,
    ] {
        out.put_u16(seg.selector);
        out.put_u64(seg.base);
        out.put_u32(seg.limit);
        out.put_u16(seg.attributes);
    }
    for v in [
        regs.system.cr0,
        regs.system.cr2,
        regs.system.cr3,
        regs.system.cr4,
        regs.system.efer,
        regs.system.apic_base,
        regs.system.star,
        regs.system.lstar,
        regs.system.kernel_gs_base,
    ] {
        out.put_u64(v);
    }
    out.put_u64(regs.tsc);
    out.put_u16(match regs.pending_interrupt {
        Some(v) => 0x100 | v as u16,
        None => 0,
    });
}

/// Decodes a byte stream produced by [`StreamEncoder`] and/or the
/// scatter-gather encode lanes.
///
/// The decoder walks an ordered queue of segments. Reads that fall inside
/// one segment — the overwhelmingly common case, since every record is
/// encoded into exactly one lane buffer — are zero-copy `split_to` slices;
/// only a read that genuinely straddles a segment boundary (e.g. a frame
/// header split across two hand-built fragments) falls back to a copy.
#[derive(Debug)]
pub struct StreamDecoder {
    segments: VecDeque<Bytes>,
    remaining: usize,
    version: u16,
}

impl StreamDecoder {
    /// Validates the preamble and prepares to decode records.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadMagic`] or [`WireError::UnsupportedVersion`]
    /// for a foreign or future-format stream, and [`WireError::Truncated`]
    /// if even the preamble is incomplete.
    pub fn new(bytes: Bytes) -> WireResult<Self> {
        Self::new_scattered(ScatterStream::from(bytes))
    }

    /// Like [`new`](StreamDecoder::new), but over a segmented stream whose
    /// parts are consumed in place — the segments are never concatenated.
    pub fn new_scattered(stream: ScatterStream) -> WireResult<Self> {
        let mut dec = StreamDecoder {
            remaining: stream.len(),
            segments: stream.into_segments().into(),
            version: 0,
        };
        if dec.remaining < PREAMBLE_BYTES {
            return Err(WireError::Truncated);
        }
        let magic = u32::from_be_bytes(dec.read_array::<4>()?);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_be_bytes(dec.read_array::<2>()?);
        if version != VERSION && version != VERSION_V3 {
            return Err(WireError::UnsupportedVersion(version));
        }
        dec.version = version;
        Ok(dec)
    }

    /// Like [`new_scattered`](StreamDecoder::new_scattered), but a session
    /// that has negotiated a version also rejects streams carrying any
    /// *other* decodable version with [`WireError::StaleVersion`] — e.g. a
    /// v2 frame arriving after v3 was agreed.
    pub fn new_negotiated(stream: ScatterStream, negotiated: u16) -> WireResult<Self> {
        let dec = Self::new_scattered(stream)?;
        if dec.version != negotiated {
            return Err(WireError::StaleVersion {
                negotiated,
                actual: dec.version,
            });
        }
        Ok(dec)
    }

    /// Format version carried by the stream preamble.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    fn skip_spent(&mut self) {
        while matches!(self.segments.front(), Some(s) if s.is_empty()) {
            self.segments.pop_front();
        }
    }

    fn read_array<const N: usize>(&mut self) -> WireResult<[u8; N]> {
        if self.remaining < N {
            return Err(WireError::Truncated);
        }
        self.skip_spent();
        let mut out = [0u8; N];
        let front = self.segments.front_mut().ok_or(WireError::Truncated)?;
        if front.remaining() >= N {
            front.copy_to_slice(&mut out);
        } else {
            let mut filled = 0;
            while filled < N {
                self.skip_spent();
                let front = self.segments.front_mut().ok_or(WireError::Truncated)?;
                let take = (N - filled).min(front.remaining());
                front.copy_to_slice(&mut out[filled..filled + take]);
                filled += take;
            }
        }
        self.remaining -= N;
        Ok(out)
    }

    fn take_bytes(&mut self, n: usize) -> WireResult<Bytes> {
        if self.remaining < n {
            return Err(WireError::Truncated);
        }
        self.skip_spent();
        self.remaining -= n;
        if n == 0 {
            return Ok(Bytes::new());
        }
        let front = self.segments.front_mut().ok_or(WireError::Truncated)?;
        if front.len() >= n {
            return Ok(front.split_to(n));
        }
        // Slow path: the span straddles segments — copy it together.
        let mut buf = Vec::with_capacity(n);
        let mut left = n;
        while left > 0 {
            self.skip_spent();
            let front = self.segments.front_mut().ok_or(WireError::Truncated)?;
            let take = left.min(front.len());
            buf.extend_from_slice(&front.split_to(take));
            left -= take;
        }
        Ok(Bytes::from(buf))
    }

    /// Decodes the next record, or `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on truncation, corruption, or unknown records.
    pub fn next_record(&mut self) -> WireResult<Option<Record>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.remaining < FRAME_HEADER_BYTES {
            return Err(WireError::Truncated);
        }
        let tag = self.read_array::<1>()?[0];
        let len = u32::from_be_bytes(self.read_array::<4>()?) as usize;
        let expected_sum = u32::from_be_bytes(self.read_array::<4>()?);
        if tag == TAG_PAGE_COLUMNS && self.version < VERSION_V3 {
            // Columnar records only exist from v3 on; a v2 stream carrying
            // one is foreign, exactly as a v2 decoder would report it.
            return Err(WireError::UnknownRecord(tag));
        }
        let payload = self.take_bytes(len)?;
        // v3 columnar frames checksum only their fixed header; each column
        // carries its own digest so meta- and payload-column corruption are
        // reported as distinct errors.
        let actual_sum = if tag == TAG_PAGE_COLUMNS {
            if payload.len() < COLUMNS_HEADER_BYTES {
                return Err(WireError::Truncated);
            }
            checksum(&payload[..COLUMNS_HEADER_BYTES])
        } else {
            checksum(&payload)
        };
        if actual_sum != expected_sum {
            return Err(WireError::ChecksumMismatch {
                expected: expected_sum,
                actual: actual_sum,
            });
        }
        decode_payload(tag, payload).map(Some)
    }

    /// Decodes every remaining record.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] raised mid-stream.
    pub fn collect_records(mut self) -> WireResult<Vec<Record>> {
        let mut records = Vec::new();
        while let Some(r) = self.next_record()? {
            records.push(r);
        }
        Ok(records)
    }
}

fn decode_payload(tag: u8, mut p: Bytes) -> WireResult<Record> {
    fn need(p: &Bytes, n: usize) -> WireResult<()> {
        if p.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }
    match tag {
        TAG_HEADER => {
            need(&p, 3)?;
            let source = match p.get_u8() {
                0 => HypervisorKind::Xen,
                1 => HypervisorKind::Kvm,
                _ => return Err(WireError::BadPayload("unknown source hypervisor")),
            };
            let name_len = p.get_u16() as usize;
            need(&p, name_len + 12)?;
            let name_bytes = p.split_to(name_len);
            let vm_name = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| WireError::BadPayload("vm name is not utf-8"))?;
            Ok(Record::StreamHeader {
                source,
                vm_name,
                memory_bytes: p.get_u64(),
                vcpus: p.get_u32(),
            })
        }
        TAG_CKPT_BEGIN => {
            need(&p, 8)?;
            Ok(Record::CheckpointBegin { seq: p.get_u64() })
        }
        TAG_PAGE_BATCH => {
            need(&p, 4)?;
            let count = p.get_u32() as usize;
            need(&p, count * 14)?;
            let mut delta = MemoryDelta::new();
            for _ in 0..count {
                let frame = p.get_u64();
                let version = p.get_u32();
                let last_writer = p.get_u16();
                delta.push(
                    PageId::new(frame),
                    PageVersion {
                        version,
                        last_writer,
                    },
                );
            }
            Ok(Record::PageBatch(delta))
        }
        TAG_PAGE_DATA => {
            let stride = PAGE_META_BYTES + PAGE_CONTENT_BYTES;
            if !p.remaining().is_multiple_of(stride) {
                return Err(WireError::BadPayload(
                    "page-data record is not a whole number of pages",
                ));
            }
            let count = p.remaining() / stride;
            let mut batch = PageDataBatch::with_capacity(count);
            for _ in 0..count {
                let frame = p.get_u64();
                let version = p.get_u32();
                let last_writer = p.get_u16();
                let content = p.split_to(PAGE_CONTENT_BYTES);
                batch.push(
                    PageId::new(frame),
                    PageVersion {
                        version,
                        last_writer,
                    },
                    content,
                );
            }
            Ok(Record::PageDataBatch(batch))
        }
        TAG_PAGE_COLUMNS => decode_page_columns(p).map(Record::PageColumns),
        TAG_VCPU => {
            need(&p, 5)?;
            let index = p.get_u32();
            let online = p.get_u8() != 0;
            let regs = decode_arch_regs(&mut p)?;
            Ok(Record::VcpuState {
                index,
                cir: CpuStateCir { regs, online },
            })
        }
        TAG_DEVICE => {
            need(&p, 1)?;
            let identity = match p.get_u8() {
                0 => {
                    need(&p, 8)?;
                    let mut mac = [0u8; 6];
                    p.copy_to_slice(&mut mac);
                    DeviceIdentity::Net {
                        mac,
                        mtu: p.get_u16(),
                    }
                }
                1 => {
                    need(&p, 17)?;
                    DeviceIdentity::Block {
                        volume_id: p.get_u64(),
                        capacity_sectors: p.get_u64(),
                        read_only: p.get_u8() != 0,
                    }
                }
                2 => DeviceIdentity::Console,
                _ => return Err(WireError::BadPayload("unknown device class")),
            };
            Ok(Record::Device(identity))
        }
        TAG_CKPT_END => {
            need(&p, 16)?;
            Ok(Record::CheckpointEnd {
                seq: p.get_u64(),
                pages_total: p.get_u64(),
            })
        }
        TAG_ACK => {
            need(&p, 8)?;
            Ok(Record::Ack { seq: p.get_u64() })
        }
        other => Err(WireError::UnknownRecord(other)),
    }
}

fn decode_arch_regs(p: &mut Bytes) -> WireResult<ArchRegs> {
    let expected = GPR_COUNT * 8 + 16 + 7 * 16 + 9 * 8 + 8 + 2;
    if p.remaining() < expected {
        return Err(WireError::Truncated);
    }
    let mut regs = ArchRegs::default();
    for g in &mut regs.gprs {
        *g = p.get_u64();
    }
    regs.rip = p.get_u64();
    regs.rflags = p.get_u64();
    let mut segs = [Segment::default(); 7];
    for seg in &mut segs {
        seg.selector = p.get_u16();
        seg.base = p.get_u64();
        seg.limit = p.get_u32();
        seg.attributes = p.get_u16();
    }
    [
        regs.cs, regs.ds, regs.es, regs.fs, regs.gs, regs.ss, regs.tr,
    ] = segs;
    regs.system.cr0 = p.get_u64();
    regs.system.cr2 = p.get_u64();
    regs.system.cr3 = p.get_u64();
    regs.system.cr4 = p.get_u64();
    regs.system.efer = p.get_u64();
    regs.system.apic_base = p.get_u64();
    regs.system.star = p.get_u64();
    regs.system.lstar = p.get_u64();
    regs.system.kernel_gs_base = p.get_u64();
    regs.tsc = p.get_u64();
    let pending = p.get_u16();
    regs.pending_interrupt = (pending & 0x100 != 0).then_some(pending as u8);
    Ok(regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::arch::Gpr;

    fn sample_records() -> Vec<Record> {
        let mut regs = ArchRegs::reset_state();
        regs.set_gpr(Gpr::Rdi, 77);
        regs.pending_interrupt = Some(0xfe);
        let mut delta = MemoryDelta::new();
        delta.push(
            PageId::new(42),
            PageVersion {
                version: 9,
                last_writer: 2,
            },
        );
        vec![
            Record::StreamHeader {
                source: HypervisorKind::Xen,
                vm_name: "protected-vm".into(),
                memory_bytes: 1 << 30,
                vcpus: 4,
            },
            Record::CheckpointBegin { seq: 1 },
            Record::PageBatch(delta),
            Record::VcpuState {
                index: 0,
                cir: CpuStateCir { regs, online: true },
            },
            Record::Device(DeviceIdentity::Net {
                mac: [1, 2, 3, 4, 5, 6],
                mtu: 1500,
            }),
            Record::Device(DeviceIdentity::Block {
                volume_id: 7,
                capacity_sectors: 1000,
                read_only: false,
            }),
            Record::Device(DeviceIdentity::Console),
            Record::CheckpointEnd {
                seq: 1,
                pages_total: 1,
            },
            Record::Ack { seq: 1 },
        ]
    }

    #[test]
    fn round_trip_every_record_type() {
        let records = sample_records();
        let mut enc = StreamEncoder::new();
        for r in &records {
            enc.push(r);
        }
        let decoded = StreamDecoder::new(enc.finish())
            .unwrap()
            .collect_records()
            .unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdead_beef);
        buf.put_u16(VERSION);
        assert_eq!(
            StreamDecoder::new(buf.freeze()).unwrap_err(),
            WireError::BadMagic(0xdead_beef)
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION_V3 + 1);
        assert_eq!(
            StreamDecoder::new(buf.freeze()).unwrap_err(),
            WireError::UnsupportedVersion(VERSION_V3 + 1)
        );
    }

    #[test]
    fn flipped_bit_is_caught_by_checksum() {
        let mut enc = StreamEncoder::new();
        enc.push(&Record::Ack { seq: 5 });
        let mut bytes = enc.finish().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut dec = StreamDecoder::new(Bytes::from(bytes)).unwrap();
        assert!(matches!(
            dec.next_record(),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_stream_is_caught() {
        let mut enc = StreamEncoder::new();
        enc.push(&Record::CheckpointBegin { seq: 3 });
        let bytes = enc.finish();
        let cut = bytes.slice(0..bytes.len() - 2);
        let mut dec = StreamDecoder::new(cut).unwrap();
        assert_eq!(dec.next_record().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn unknown_record_type_is_reported() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        buf.put_u8(0x7f);
        buf.put_u32(0);
        buf.put_u32(checksum(&[]));
        let mut dec = StreamDecoder::new(buf.freeze()).unwrap();
        assert_eq!(
            dec.next_record().unwrap_err(),
            WireError::UnknownRecord(0x7f)
        );
    }

    #[test]
    fn empty_stream_yields_no_records() {
        let enc = StreamEncoder::new();
        assert!(enc.is_empty());
        let records = StreamDecoder::new(enc.finish())
            .unwrap()
            .collect_records()
            .unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn large_page_batch_round_trips() {
        let delta: MemoryDelta = (0..10_000u64)
            .map(|f| {
                (
                    PageId::new(f),
                    PageVersion {
                        version: (f % 7) as u32 + 1,
                        last_writer: (f % 4) as u16,
                    },
                )
            })
            .collect();
        let mut enc = StreamEncoder::new();
        enc.push(&Record::PageBatch(delta.clone()));
        let decoded = StreamDecoder::new(enc.finish())
            .unwrap()
            .collect_records()
            .unwrap();
        assert_eq!(decoded, vec![Record::PageBatch(delta)]);
    }

    #[test]
    fn streaming_checksum_is_chunk_invariant() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 3) as u8).collect();
        let one_shot = checksum(&data);
        for chunk in [1usize, 3, 7, 8, 13, 64, 999] {
            let mut c = StreamingChecksum::new();
            for piece in data.chunks(chunk) {
                c.update(piece);
            }
            assert_eq!(c.finish(), one_shot, "chunk size {chunk} diverged");
            assert_eq!(c.bytes_hashed(), data.len() as u64);
        }
    }

    #[test]
    fn streaming_checksum_distinguishes_trailing_zeros() {
        assert_ne!(checksum(&[]), checksum(&[0]));
        assert_ne!(checksum(&[0]), checksum(&[0, 0]));
        assert_ne!(checksum(&[1, 2, 3]), checksum(&[1, 2, 3, 0]));
    }

    fn page_content(seed: u8) -> Vec<u8> {
        (0..PAGE_CONTENT_BYTES)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn page_data_writer_matches_record_encoding() {
        let pages: Vec<(PageId, PageVersion, Vec<u8>)> = (0..5u64)
            .map(|f| {
                (
                    PageId::new(f * 3),
                    PageVersion {
                        version: f as u32 + 1,
                        last_writer: f as u16,
                    },
                    page_content(f as u8),
                )
            })
            .collect();

        // Streamed through the in-place writer.
        let mut streamed = BytesMut::new();
        write_preamble(&mut streamed);
        let mut w = PageDataWriter::new(&mut streamed);
        for (page, rec, content) in &pages {
            w.push(*page, *rec, content);
        }
        assert_eq!(w.finish(), pages.len() as u64);

        // Built as an owned record and pushed through the encoder.
        let mut batch = PageDataBatch::new();
        for (page, rec, content) in &pages {
            batch.push(*page, *rec, Bytes::from(content.as_slice()));
        }
        let mut enc = StreamEncoder::new();
        enc.push(&Record::PageDataBatch(batch.clone()));

        assert_eq!(&streamed[..], &enc.finish()[..]);

        let decoded = StreamDecoder::new(streamed.freeze())
            .unwrap()
            .collect_records()
            .unwrap();
        assert_eq!(decoded, vec![Record::PageDataBatch(batch)]);
    }

    #[test]
    fn page_data_decode_is_zero_copy() {
        let mut buf = BytesMut::new();
        write_preamble(&mut buf);
        let mut w = PageDataWriter::new(&mut buf);
        let content = page_content(9);
        w.push(
            PageId::new(4),
            PageVersion {
                version: 1,
                last_writer: 0,
            },
            &content,
        );
        w.finish();
        let stream = buf.freeze();
        let mut dec = StreamDecoder::new(stream.clone()).unwrap();
        let rec = dec.next_record().unwrap().unwrap();
        let Record::PageDataBatch(batch) = rec else {
            panic!("expected a page-data record");
        };
        let (_, _, decoded_content) = &batch.pages()[0];
        assert_eq!(&decoded_content[..], &content[..]);
        // The decoded content shares the stream's storage: reclaiming the
        // stream fails while the slice is alive, proving no copy was made.
        assert!(stream.try_into_mut().is_err());
    }

    #[test]
    fn scattered_segments_decode_like_contiguous() {
        let records = sample_records();

        // Head segment: preamble + first record; one record per further
        // segment — the shape the per-lane encode produces.
        let mut stream = ScatterStream::new();
        let mut head = StreamEncoder::new();
        head.push(&records[0]);
        stream.push(head.finish());
        for r in &records[1..] {
            let mut seg = BytesMut::new();
            encode_record_into(r, &mut seg);
            stream.push(seg.freeze());
        }

        let gathered = stream.gather();
        let total = stream.len();
        assert_eq!(gathered.len(), total);

        let decoded = StreamDecoder::new_scattered(stream)
            .unwrap()
            .collect_records()
            .unwrap();
        assert_eq!(decoded, records);

        let decoded_flat = StreamDecoder::new(gathered)
            .unwrap()
            .collect_records()
            .unwrap();
        assert_eq!(decoded_flat, records);
    }

    #[test]
    fn reads_straddling_segment_boundaries_still_decode() {
        // Split a contiguous stream at every possible byte boundary; the
        // decoder must not care where the seams fall.
        let mut enc = StreamEncoder::new();
        enc.push(&Record::CheckpointBegin { seq: 7 });
        enc.push(&Record::Ack { seq: 7 });
        let flat = enc.finish();
        for cut in 1..flat.len() {
            let mut stream = ScatterStream::new();
            stream.push(flat.slice(0..cut));
            stream.push(flat.slice(cut..flat.len()));
            let decoded = StreamDecoder::new_scattered(stream)
                .unwrap()
                .collect_records()
                .unwrap();
            assert_eq!(
                decoded,
                vec![Record::CheckpointBegin { seq: 7 }, Record::Ack { seq: 7 },],
                "failed when cut at byte {cut}"
            );
        }
    }

    #[test]
    fn slice_page_batch_encoding_matches_owned_record() {
        let entries: Vec<(PageId, PageVersion)> = (0..100u64)
            .map(|f| {
                (
                    PageId::new(f),
                    PageVersion {
                        version: (f % 5) as u32 + 1,
                        last_writer: (f % 3) as u16,
                    },
                )
            })
            .collect();
        let mut direct = BytesMut::new();
        encode_page_batch_into(&entries, &mut direct);

        let delta = MemoryDelta::from_entries(entries);
        let mut via_record = BytesMut::new();
        encode_record_into(&Record::PageBatch(delta), &mut via_record);

        assert_eq!(&direct[..], &via_record[..]);
    }

    #[test]
    fn encoder_buffer_reuse_produces_identical_streams() {
        let records = sample_records();
        let mut enc = StreamEncoder::new();
        for r in &records {
            enc.push(r);
        }
        let first = enc.finish();

        // Recycle the frozen stream's storage into a second encoder.
        let recycled = first
            .clone()
            .try_into_mut()
            .err()
            .map(|_| BytesMut::with_capacity(first.len()))
            .unwrap_or_default();
        let mut enc2 = StreamEncoder::with_buffer(recycled);
        for r in &records {
            enc2.push(r);
        }
        assert_eq!(first, enc2.finish());
    }

    fn v3_buf() -> BytesMut {
        let mut buf = BytesMut::new();
        write_preamble_versioned(&mut buf, VERSION_V3);
        buf
    }

    fn sample_columns_batch() -> PageColumnsBatch {
        let base = page_content(1);
        let mut touched = base.clone();
        touched[100] ^= 0xff;
        touched[2000..2010].copy_from_slice(&[7u8; 10]);
        let mut batch = PageColumnsBatch::new(4);
        let rec = |v: u32, w: u16| PageVersion {
            version: v,
            last_writer: w,
        };
        batch.push(PageId::new(3), rec(1, 0), PagePayload::Meta);
        batch.push(
            PageId::new(5),
            rec(2, 1),
            classify_page(&vec![0u8; PAGE_CONTENT_BYTES], None),
        );
        batch.push(
            PageId::new(6),
            rec(3, 0),
            classify_page(&page_content(9), None),
        );
        batch.push(
            PageId::new(9),
            rec(4, 1),
            classify_page(&touched, Some(&base)),
        );
        batch
    }

    #[test]
    fn v3_page_columns_round_trip() {
        let batch = sample_columns_batch();
        let mut buf = v3_buf();
        encode_record_into(&Record::PageColumns(batch.clone()), &mut buf);
        let mut dec = StreamDecoder::new(buf.freeze()).unwrap();
        assert_eq!(dec.version(), VERSION_V3);
        let Record::PageColumns(decoded) = dec.next_record().unwrap().unwrap() else {
            panic!("expected a page-columns record");
        };
        assert_eq!(decoded, batch);
        assert_eq!(decoded.base_epoch(), 4);
    }

    #[test]
    fn v3_payload_classifier_covers_all_modes() {
        let base = page_content(2);
        // Zero page suppressed entirely.
        assert_eq!(
            classify_page(&vec![0u8; PAGE_CONTENT_BYTES], Some(&base)),
            PagePayload::Zero
        );
        // First-touch (no base) travels whole.
        let content = page_content(3);
        let PagePayload::Full(full) = classify_page(&content, None) else {
            panic!("first-touch page must travel whole");
        };
        assert_eq!(&full[..], &content[..]);
        // Low-entropy rewrite becomes sparse XOR runs that re-materialize.
        let mut touched = base.clone();
        touched[17] = !touched[17];
        touched[400..420].fill(0xaa);
        let payload = classify_page(&touched, Some(&base));
        assert!(matches!(payload, PagePayload::Delta(_)));
        let restored = payload.materialize(Some(&base)).unwrap().unwrap();
        assert_eq!(restored, touched);
        // High-entropy rewrite falls back to a full page.
        let rewritten = page_content(200);
        assert!(matches!(
            classify_page(&rewritten, Some(&base)),
            PagePayload::Full(_)
        ));
        // Unchanged content re-asserts the base with an empty delta.
        let payload = classify_page(&base, Some(&base));
        assert_eq!(payload, PagePayload::Delta(Vec::new()));
        assert_eq!(payload.materialize(Some(&base)).unwrap().unwrap(), base);
    }

    #[test]
    fn v3_meta_fast_path_matches_owned_batch() {
        let entries: Vec<(PageId, PageVersion)> = (0..300u64)
            .map(|f| {
                (
                    PageId::new(f * 7 % 512),
                    PageVersion {
                        version: (f % 9) as u32 + 1,
                        last_writer: (f % 4) as u16,
                    },
                )
            })
            .collect();
        let mut direct = BytesMut::new();
        encode_page_columns_meta_into(11, &entries, &mut direct);
        let mut via_record = BytesMut::new();
        encode_record_into(
            &Record::PageColumns(PageColumnsBatch::from_metas(11, &entries)),
            &mut via_record,
        );
        assert_eq!(&direct[..], &via_record[..]);

        // Columnar metadata must be materially denser than the v2 batch.
        let mut v2 = BytesMut::new();
        encode_page_batch_into(&entries, &mut v2);
        assert!(
            direct.len() * 3 <= v2.len(),
            "columnar metas not >=3x denser: v3 {} vs v2 {}",
            direct.len(),
            v2.len()
        );
    }

    #[test]
    fn v3_meta_column_corruption_is_distinct_from_payload_corruption() {
        let batch = sample_columns_batch();
        let mut buf = v3_buf();
        encode_record_into(&Record::PageColumns(batch.clone()), &mut buf);
        let clean = buf.freeze();
        let header_at = PREAMBLE_BYTES + FRAME_HEADER_BYTES;
        let meta_at = header_at + COLUMNS_HEADER_BYTES;
        let meta_len =
            u32::from_be_bytes(clean[header_at + 12..header_at + 16].try_into().unwrap()) as usize;

        // Bit-flip inside the meta column.
        let mut corrupt = clean.to_vec();
        corrupt[meta_at + 1] ^= 0x40;
        let mut dec = StreamDecoder::new(Bytes::from(corrupt)).unwrap();
        assert!(matches!(
            dec.next_record(),
            Err(WireError::MetaColumnCorrupt { .. })
        ));

        // Bit-flip inside the payload column.
        let mut corrupt = clean.to_vec();
        corrupt[meta_at + meta_len + 5] ^= 0x40;
        let mut dec = StreamDecoder::new(Bytes::from(corrupt)).unwrap();
        assert!(matches!(
            dec.next_record(),
            Err(WireError::PayloadColumnCorrupt { .. })
        ));

        // Bit-flip inside the fixed header is caught by the frame checksum.
        let mut corrupt = clean.to_vec();
        corrupt[header_at + 9] ^= 0x01;
        let mut dec = StreamDecoder::new(Bytes::from(corrupt)).unwrap();
        assert!(matches!(
            dec.next_record(),
            Err(WireError::ChecksumMismatch { .. })
        ));

        // Truncation mid-payload-column.
        let cut = clean.slice(0..clean.len() - 3);
        let mut dec = StreamDecoder::new(cut).unwrap();
        assert_eq!(dec.next_record().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn v3_wrong_delta_base_is_reported() {
        let batch = sample_columns_batch();
        assert!(batch.check_base(4).is_ok());
        assert_eq!(
            batch.check_base(3).unwrap_err(),
            WireError::DeltaBaseMismatch {
                stream_base: 4,
                replica_base: 3,
            }
        );
    }

    #[test]
    fn negotiated_decoder_rejects_stale_version() {
        // A v2 stream after v3 was negotiated is stale, not merely old.
        let enc = StreamEncoder::new();
        let stream = ScatterStream::from(enc.finish());
        assert_eq!(
            StreamDecoder::new_negotiated(stream, VERSION_V3).unwrap_err(),
            WireError::StaleVersion {
                negotiated: VERSION_V3,
                actual: VERSION,
            }
        );
        // And the agreed version passes.
        let mut buf = v3_buf();
        encode_record_into(&Record::Ack { seq: 1 }, &mut buf);
        let dec =
            StreamDecoder::new_negotiated(ScatterStream::from(buf.freeze()), VERSION_V3).unwrap();
        assert_eq!(dec.version(), VERSION_V3);
    }

    #[test]
    fn v2_stream_rejects_columnar_record() {
        let mut buf = BytesMut::new();
        write_preamble(&mut buf);
        encode_record_into(&Record::PageColumns(PageColumnsBatch::new(0)), &mut buf);
        let mut dec = StreamDecoder::new(buf.freeze()).unwrap();
        assert_eq!(
            dec.next_record().unwrap_err(),
            WireError::UnknownRecord(0x09)
        );
    }

    #[test]
    fn unfinished_page_data_writer_is_rejected_by_decoder() {
        let mut buf = BytesMut::new();
        write_preamble(&mut buf);
        let mut w = PageDataWriter::new(&mut buf);
        w.push(
            PageId::new(1),
            PageVersion {
                version: 1,
                last_writer: 0,
            },
            &page_content(1),
        );
        let _unfinished = w; // never finished: placeholder frame stays zeroed
        let mut dec = StreamDecoder::new(buf.freeze()).unwrap();
        assert!(dec.next_record().is_err());
    }
}
