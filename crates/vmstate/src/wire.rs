//! The versioned binary checkpoint stream codec.
//!
//! Replication traffic between the primary and secondary replication
//! engines is a record stream: a header identifying the source, then
//! repeated checkpoint rounds of page batches, vCPU states and device
//! identities, each round closed by an end-record carrying a checksum, and
//! acknowledged by the receiver. Every record is individually length-framed
//! and checksummed so a corrupted or truncated stream is detected instead
//! of silently building a diverged replica.
//!
//! The paper's own stream is libxc's migration v2 format extended for
//! kvmtool; ours is an original format serving the same role.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use here_hypervisor::arch::{ArchRegs, Segment, GPR_COUNT};
use here_hypervisor::devices::DeviceIdentity;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::memory::{PageId, PageVersion};

use crate::cir::{CpuStateCir, MemoryDelta};

/// Stream magic: `"HERE"`.
pub const MAGIC: u32 = 0x4845_5245;
/// Current stream format version.
pub const VERSION: u16 = 1;

/// Errors raised while decoding a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The stream does not begin with the `HERE` magic.
    BadMagic(u32),
    /// The stream version is newer than this decoder understands.
    UnsupportedVersion(u16),
    /// The stream ended in the middle of a record.
    Truncated,
    /// An unknown record type byte was encountered.
    UnknownRecord(u8),
    /// A record's checksum did not match its payload.
    ChecksumMismatch {
        /// Checksum carried by the record.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
    /// A record payload was structurally invalid.
    BadPayload(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad stream magic {m:#010x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported stream version {v}"),
            WireError::Truncated => write!(f, "stream truncated mid-record"),
            WireError::UnknownRecord(t) => write!(f, "unknown record type {t:#04x}"),
            WireError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "record checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            WireError::BadPayload(msg) => write!(f, "bad record payload: {msg}"),
        }
    }
}

impl Error for WireError {}

/// Convenience alias for wire results.
pub type WireResult<T> = Result<T, WireError>;

/// A decoded stream record.
///
/// `PageBatch` dwarfs the control records by design — a checkpoint is
/// almost entirely pages — and records are built in place, never moved
/// through hot paths, so boxing the batch would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Stream preamble: who is sending and what VM this is.
    StreamHeader {
        /// Format of the *source* hypervisor's native blobs.
        source: HypervisorKind,
        /// VM name.
        vm_name: String,
        /// Guest memory size in bytes.
        memory_bytes: u64,
        /// Number of vCPUs.
        vcpus: u32,
    },
    /// Opens checkpoint round `seq`.
    CheckpointBegin {
        /// Checkpoint sequence number.
        seq: u64,
    },
    /// A batch of memory pages.
    PageBatch(MemoryDelta),
    /// One vCPU's state in the common format.
    VcpuState {
        /// vCPU index.
        index: u32,
        /// Common-format CPU state.
        cir: CpuStateCir,
    },
    /// One device's stable identity.
    Device(DeviceIdentity),
    /// Closes checkpoint round `seq`.
    CheckpointEnd {
        /// Checkpoint sequence number.
        seq: u64,
        /// Total pages sent in the round (receiver cross-checks).
        pages_total: u64,
    },
    /// Receiver acknowledgement of round `seq` (flows backwards).
    Ack {
        /// Acknowledged checkpoint sequence number.
        seq: u64,
    },
}

const TAG_HEADER: u8 = 0x01;
const TAG_CKPT_BEGIN: u8 = 0x02;
const TAG_PAGE_BATCH: u8 = 0x03;
const TAG_VCPU: u8 = 0x04;
const TAG_DEVICE: u8 = 0x05;
const TAG_CKPT_END: u8 = 0x06;
const TAG_ACK: u8 = 0x07;

fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encodes records into a byte stream.
///
/// # Examples
///
/// ```
/// use here_vmstate::wire::{Record, StreamEncoder, StreamDecoder};
///
/// let mut enc = StreamEncoder::new();
/// enc.push(&Record::CheckpointBegin { seq: 1 });
/// enc.push(&Record::CheckpointEnd { seq: 1, pages_total: 0 });
/// let bytes = enc.finish();
/// let mut dec = StreamDecoder::new(bytes)?;
/// assert_eq!(dec.next_record()?, Some(Record::CheckpointBegin { seq: 1 }));
/// # Ok::<(), here_vmstate::wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct StreamEncoder {
    buf: BytesMut,
}

impl StreamEncoder {
    /// Creates an encoder and writes the stream preamble (magic + version).
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        StreamEncoder { buf }
    }

    /// Appends one record.
    pub fn push(&mut self, record: &Record) {
        let mut payload = BytesMut::new();
        let tag = encode_payload(record, &mut payload);
        self.buf.put_u8(tag);
        self.buf.put_u32(payload.len() as u32);
        self.buf.put_u32(fnv32(&payload));
        self.buf.extend_from_slice(&payload);
    }

    /// Bytes emitted so far (including preamble).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if only the preamble has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.len() == 6
    }

    /// Finalises the stream.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

impl Default for StreamEncoder {
    fn default() -> Self {
        StreamEncoder::new()
    }
}

fn encode_payload(record: &Record, out: &mut BytesMut) -> u8 {
    match record {
        Record::StreamHeader {
            source,
            vm_name,
            memory_bytes,
            vcpus,
        } => {
            out.put_u8(match source {
                HypervisorKind::Xen => 0,
                HypervisorKind::Kvm => 1,
            });
            let name = vm_name.as_bytes();
            out.put_u16(name.len() as u16);
            out.extend_from_slice(name);
            out.put_u64(*memory_bytes);
            out.put_u32(*vcpus);
            TAG_HEADER
        }
        Record::CheckpointBegin { seq } => {
            out.put_u64(*seq);
            TAG_CKPT_BEGIN
        }
        Record::PageBatch(delta) => {
            out.put_u32(delta.len() as u32);
            for &(page, rec) in delta.entries() {
                out.put_u64(page.frame());
                out.put_u32(rec.version);
                out.put_u16(rec.last_writer);
            }
            TAG_PAGE_BATCH
        }
        Record::VcpuState { index, cir } => {
            out.put_u32(*index);
            out.put_u8(u8::from(cir.online));
            encode_arch_regs(&cir.regs, out);
            TAG_VCPU
        }
        Record::Device(identity) => {
            match identity {
                DeviceIdentity::Net { mac, mtu } => {
                    out.put_u8(0);
                    out.extend_from_slice(mac);
                    out.put_u16(*mtu);
                }
                DeviceIdentity::Block {
                    volume_id,
                    capacity_sectors,
                    read_only,
                } => {
                    out.put_u8(1);
                    out.put_u64(*volume_id);
                    out.put_u64(*capacity_sectors);
                    out.put_u8(u8::from(*read_only));
                }
                DeviceIdentity::Console => out.put_u8(2),
            }
            TAG_DEVICE
        }
        Record::CheckpointEnd { seq, pages_total } => {
            out.put_u64(*seq);
            out.put_u64(*pages_total);
            TAG_CKPT_END
        }
        Record::Ack { seq } => {
            out.put_u64(*seq);
            TAG_ACK
        }
    }
}

fn encode_arch_regs(regs: &ArchRegs, out: &mut BytesMut) {
    for &g in &regs.gprs {
        out.put_u64(g);
    }
    out.put_u64(regs.rip);
    out.put_u64(regs.rflags);
    for seg in [
        &regs.cs, &regs.ds, &regs.es, &regs.fs, &regs.gs, &regs.ss, &regs.tr,
    ] {
        out.put_u16(seg.selector);
        out.put_u64(seg.base);
        out.put_u32(seg.limit);
        out.put_u16(seg.attributes);
    }
    for v in [
        regs.system.cr0,
        regs.system.cr2,
        regs.system.cr3,
        regs.system.cr4,
        regs.system.efer,
        regs.system.apic_base,
        regs.system.star,
        regs.system.lstar,
        regs.system.kernel_gs_base,
    ] {
        out.put_u64(v);
    }
    out.put_u64(regs.tsc);
    out.put_u16(match regs.pending_interrupt {
        Some(v) => 0x100 | v as u16,
        None => 0,
    });
}

/// Decodes a byte stream produced by [`StreamEncoder`].
#[derive(Debug)]
pub struct StreamDecoder {
    buf: Bytes,
}

impl StreamDecoder {
    /// Validates the preamble and prepares to decode records.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadMagic`] or [`WireError::UnsupportedVersion`]
    /// for a foreign or future-format stream, and [`WireError::Truncated`]
    /// if even the preamble is incomplete.
    pub fn new(mut bytes: Bytes) -> WireResult<Self> {
        if bytes.remaining() < 6 {
            return Err(WireError::Truncated);
        }
        let magic = bytes.get_u32();
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = bytes.get_u16();
        if version != VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        Ok(StreamDecoder { buf: bytes })
    }

    /// Decodes the next record, or `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on truncation, corruption, or unknown records.
    pub fn next_record(&mut self) -> WireResult<Option<Record>> {
        if self.buf.remaining() == 0 {
            return Ok(None);
        }
        if self.buf.remaining() < 9 {
            return Err(WireError::Truncated);
        }
        let tag = self.buf.get_u8();
        let len = self.buf.get_u32() as usize;
        let expected_sum = self.buf.get_u32();
        if self.buf.remaining() < len {
            return Err(WireError::Truncated);
        }
        let payload = self.buf.split_to(len);
        let actual_sum = fnv32(&payload);
        if actual_sum != expected_sum {
            return Err(WireError::ChecksumMismatch {
                expected: expected_sum,
                actual: actual_sum,
            });
        }
        decode_payload(tag, payload).map(Some)
    }

    /// Decodes every remaining record.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] raised mid-stream.
    pub fn collect_records(mut self) -> WireResult<Vec<Record>> {
        let mut records = Vec::new();
        while let Some(r) = self.next_record()? {
            records.push(r);
        }
        Ok(records)
    }
}

fn decode_payload(tag: u8, mut p: Bytes) -> WireResult<Record> {
    fn need(p: &Bytes, n: usize) -> WireResult<()> {
        if p.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }
    match tag {
        TAG_HEADER => {
            need(&p, 3)?;
            let source = match p.get_u8() {
                0 => HypervisorKind::Xen,
                1 => HypervisorKind::Kvm,
                _ => return Err(WireError::BadPayload("unknown source hypervisor")),
            };
            let name_len = p.get_u16() as usize;
            need(&p, name_len + 12)?;
            let name_bytes = p.split_to(name_len);
            let vm_name = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| WireError::BadPayload("vm name is not utf-8"))?;
            Ok(Record::StreamHeader {
                source,
                vm_name,
                memory_bytes: p.get_u64(),
                vcpus: p.get_u32(),
            })
        }
        TAG_CKPT_BEGIN => {
            need(&p, 8)?;
            Ok(Record::CheckpointBegin { seq: p.get_u64() })
        }
        TAG_PAGE_BATCH => {
            need(&p, 4)?;
            let count = p.get_u32() as usize;
            need(&p, count * 14)?;
            let mut delta = MemoryDelta::new();
            for _ in 0..count {
                let frame = p.get_u64();
                let version = p.get_u32();
                let last_writer = p.get_u16();
                delta.push(
                    PageId::new(frame),
                    PageVersion {
                        version,
                        last_writer,
                    },
                );
            }
            Ok(Record::PageBatch(delta))
        }
        TAG_VCPU => {
            need(&p, 5)?;
            let index = p.get_u32();
            let online = p.get_u8() != 0;
            let regs = decode_arch_regs(&mut p)?;
            Ok(Record::VcpuState {
                index,
                cir: CpuStateCir { regs, online },
            })
        }
        TAG_DEVICE => {
            need(&p, 1)?;
            let identity = match p.get_u8() {
                0 => {
                    need(&p, 8)?;
                    let mut mac = [0u8; 6];
                    p.copy_to_slice(&mut mac);
                    DeviceIdentity::Net {
                        mac,
                        mtu: p.get_u16(),
                    }
                }
                1 => {
                    need(&p, 17)?;
                    DeviceIdentity::Block {
                        volume_id: p.get_u64(),
                        capacity_sectors: p.get_u64(),
                        read_only: p.get_u8() != 0,
                    }
                }
                2 => DeviceIdentity::Console,
                _ => return Err(WireError::BadPayload("unknown device class")),
            };
            Ok(Record::Device(identity))
        }
        TAG_CKPT_END => {
            need(&p, 16)?;
            Ok(Record::CheckpointEnd {
                seq: p.get_u64(),
                pages_total: p.get_u64(),
            })
        }
        TAG_ACK => {
            need(&p, 8)?;
            Ok(Record::Ack { seq: p.get_u64() })
        }
        other => Err(WireError::UnknownRecord(other)),
    }
}

fn decode_arch_regs(p: &mut Bytes) -> WireResult<ArchRegs> {
    let expected = GPR_COUNT * 8 + 16 + 7 * 16 + 9 * 8 + 8 + 2;
    if p.remaining() < expected {
        return Err(WireError::Truncated);
    }
    let mut regs = ArchRegs::default();
    for g in &mut regs.gprs {
        *g = p.get_u64();
    }
    regs.rip = p.get_u64();
    regs.rflags = p.get_u64();
    let mut segs = [Segment::default(); 7];
    for seg in &mut segs {
        seg.selector = p.get_u16();
        seg.base = p.get_u64();
        seg.limit = p.get_u32();
        seg.attributes = p.get_u16();
    }
    [
        regs.cs, regs.ds, regs.es, regs.fs, regs.gs, regs.ss, regs.tr,
    ] = segs;
    regs.system.cr0 = p.get_u64();
    regs.system.cr2 = p.get_u64();
    regs.system.cr3 = p.get_u64();
    regs.system.cr4 = p.get_u64();
    regs.system.efer = p.get_u64();
    regs.system.apic_base = p.get_u64();
    regs.system.star = p.get_u64();
    regs.system.lstar = p.get_u64();
    regs.system.kernel_gs_base = p.get_u64();
    regs.tsc = p.get_u64();
    let pending = p.get_u16();
    regs.pending_interrupt = (pending & 0x100 != 0).then_some(pending as u8);
    Ok(regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::arch::Gpr;

    fn sample_records() -> Vec<Record> {
        let mut regs = ArchRegs::reset_state();
        regs.set_gpr(Gpr::Rdi, 77);
        regs.pending_interrupt = Some(0xfe);
        let mut delta = MemoryDelta::new();
        delta.push(
            PageId::new(42),
            PageVersion {
                version: 9,
                last_writer: 2,
            },
        );
        vec![
            Record::StreamHeader {
                source: HypervisorKind::Xen,
                vm_name: "protected-vm".into(),
                memory_bytes: 1 << 30,
                vcpus: 4,
            },
            Record::CheckpointBegin { seq: 1 },
            Record::PageBatch(delta),
            Record::VcpuState {
                index: 0,
                cir: CpuStateCir { regs, online: true },
            },
            Record::Device(DeviceIdentity::Net {
                mac: [1, 2, 3, 4, 5, 6],
                mtu: 1500,
            }),
            Record::Device(DeviceIdentity::Block {
                volume_id: 7,
                capacity_sectors: 1000,
                read_only: false,
            }),
            Record::Device(DeviceIdentity::Console),
            Record::CheckpointEnd {
                seq: 1,
                pages_total: 1,
            },
            Record::Ack { seq: 1 },
        ]
    }

    #[test]
    fn round_trip_every_record_type() {
        let records = sample_records();
        let mut enc = StreamEncoder::new();
        for r in &records {
            enc.push(r);
        }
        let decoded = StreamDecoder::new(enc.finish())
            .unwrap()
            .collect_records()
            .unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdead_beef);
        buf.put_u16(VERSION);
        assert_eq!(
            StreamDecoder::new(buf.freeze()).unwrap_err(),
            WireError::BadMagic(0xdead_beef)
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION + 1);
        assert_eq!(
            StreamDecoder::new(buf.freeze()).unwrap_err(),
            WireError::UnsupportedVersion(VERSION + 1)
        );
    }

    #[test]
    fn flipped_bit_is_caught_by_checksum() {
        let mut enc = StreamEncoder::new();
        enc.push(&Record::Ack { seq: 5 });
        let mut bytes = enc.finish().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut dec = StreamDecoder::new(Bytes::from(bytes)).unwrap();
        assert!(matches!(
            dec.next_record(),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_stream_is_caught() {
        let mut enc = StreamEncoder::new();
        enc.push(&Record::CheckpointBegin { seq: 3 });
        let bytes = enc.finish();
        let cut = bytes.slice(0..bytes.len() - 2);
        let mut dec = StreamDecoder::new(cut).unwrap();
        assert_eq!(dec.next_record().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn unknown_record_type_is_reported() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        buf.put_u8(0x7f);
        buf.put_u32(0);
        buf.put_u32(fnv32(&[]));
        let mut dec = StreamDecoder::new(buf.freeze()).unwrap();
        assert_eq!(
            dec.next_record().unwrap_err(),
            WireError::UnknownRecord(0x7f)
        );
    }

    #[test]
    fn empty_stream_yields_no_records() {
        let enc = StreamEncoder::new();
        assert!(enc.is_empty());
        let records = StreamDecoder::new(enc.finish())
            .unwrap()
            .collect_records()
            .unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn large_page_batch_round_trips() {
        let delta: MemoryDelta = (0..10_000u64)
            .map(|f| {
                (
                    PageId::new(f),
                    PageVersion {
                        version: (f % 7) as u32 + 1,
                        last_writer: (f % 4) as u16,
                    },
                )
            })
            .collect();
        let mut enc = StreamEncoder::new();
        enc.push(&Record::PageBatch(delta.clone()));
        let decoded = StreamDecoder::new(enc.finish())
            .unwrap()
            .collect_records()
            .unwrap();
        assert_eq!(decoded, vec![Record::PageBatch(delta)]);
    }
}
