//! The state translator: Xen ⇄ CIR ⇄ KVM.
//!
//! "A prerequisite of heterogeneous replication is the ability to translate
//! VM states from one hypervisor to another" (§5.3). The translator decodes
//! a source-format blob into the common intermediate representation and
//! re-encodes it for the target. It refuses blobs in the wrong source
//! format — catching miswired replication pipelines at the boundary instead
//! of corrupting the replica.

use std::error::Error;
use std::fmt;

use here_hypervisor::devices::DeviceInstance;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::vcpu::{KvmVcpuState, VcpuStateBlob, XenVcpuState};

use crate::cir::CpuStateCir;

/// Errors raised by state translation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TranslateError {
    /// The blob was not in the translator's configured source format.
    FormatMismatch {
        /// The format the translator expected.
        expected: HypervisorKind,
        /// The format the blob was actually in.
        got: HypervisorKind,
    },
    /// Source and target are the same hypervisor — translation is an
    /// identity and the caller should skip it (Remus-style homogeneous
    /// replication path).
    Homogeneous(HypervisorKind),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::FormatMismatch { expected, got } => {
                write!(f, "expected a {expected}-format blob, got {got}")
            }
            TranslateError::Homogeneous(kind) => {
                write!(
                    f,
                    "source and target are both {kind}; translation is not needed"
                )
            }
        }
    }
}

impl Error for TranslateError {}

/// Convenience alias for translation results.
pub type TranslateResult<T> = Result<T, TranslateError>;

/// A configured one-directional translator between two hypervisor formats.
///
/// # Examples
///
/// ```
/// use here_hypervisor::arch::ArchRegs;
/// use here_hypervisor::kind::HypervisorKind;
/// use here_hypervisor::vcpu::{VcpuStateBlob, XenVcpuState};
/// use here_vmstate::translate::StateTranslator;
///
/// let tr = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
/// let mut regs = ArchRegs::reset_state();
/// regs.tsc = 42;
/// let xen_blob = VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, true));
/// let kvm_blob = tr.translate_vcpu(&xen_blob).unwrap();
/// assert!(matches!(kvm_blob, VcpuStateBlob::Kvm(_)));
/// assert_eq!(kvm_blob.to_arch(), regs);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateTranslator {
    source: HypervisorKind,
    target: HypervisorKind,
}

impl StateTranslator {
    /// Creates a translator from `source`-format state to `target`-format
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError::Homogeneous`] when source and target are
    /// the same implementation.
    pub fn new(source: HypervisorKind, target: HypervisorKind) -> TranslateResult<Self> {
        if source == target {
            return Err(TranslateError::Homogeneous(source));
        }
        Ok(StateTranslator { source, target })
    }

    /// The source format.
    pub fn source(&self) -> HypervisorKind {
        self.source
    }

    /// The target format.
    pub fn target(&self) -> HypervisorKind {
        self.target
    }

    /// The reverse translator (used after fail-back).
    pub fn reversed(&self) -> StateTranslator {
        StateTranslator {
            source: self.target,
            target: self.source,
        }
    }

    /// Decodes a source-format blob into the common format.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError::FormatMismatch`] if the blob is not in the
    /// configured source format.
    pub fn decode_to_cir(&self, blob: &VcpuStateBlob) -> TranslateResult<CpuStateCir> {
        let blob_kind = match blob {
            VcpuStateBlob::Xen(_) => HypervisorKind::Xen,
            VcpuStateBlob::Kvm(_) => HypervisorKind::Kvm,
        };
        if blob_kind != self.source {
            return Err(TranslateError::FormatMismatch {
                expected: self.source,
                got: blob_kind,
            });
        }
        Ok(CpuStateCir {
            regs: blob.to_arch(),
            online: blob.is_online(),
        })
    }

    /// Encodes common-format state into the target hypervisor's format.
    pub fn encode_from_cir(&self, cir: &CpuStateCir) -> VcpuStateBlob {
        match self.target {
            HypervisorKind::Xen => {
                VcpuStateBlob::Xen(XenVcpuState::from_arch(&cir.regs, cir.online))
            }
            HypervisorKind::Kvm => {
                VcpuStateBlob::Kvm(KvmVcpuState::from_arch(&cir.regs, cir.online))
            }
        }
    }

    /// Full translation: source blob → CIR → target blob.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError::FormatMismatch`] if the blob is not in the
    /// configured source format.
    pub fn translate_vcpu(&self, blob: &VcpuStateBlob) -> TranslateResult<VcpuStateBlob> {
        let cir = self.decode_to_cir(blob)?;
        Ok(self.encode_from_cir(&cir))
    }

    /// Translates a device set: stable identities are preserved, models are
    /// switched to the target family's equivalents, rings are reset (the
    /// unplug/replug strategy of §5.2 — ring state never crosses the
    /// boundary).
    pub fn translate_devices(&self, devices: &[DeviceInstance]) -> Vec<DeviceInstance> {
        devices
            .iter()
            .map(|d| d.rehosted_for(self.target))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::arch::{ArchRegs, Gpr};
    use here_hypervisor::devices::{standard_device_set, RingState};

    fn xen_to_kvm() -> StateTranslator {
        StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap()
    }

    fn busy_regs() -> ArchRegs {
        let mut regs = ArchRegs::reset_state();
        regs.set_gpr(Gpr::Rax, 0xdead_beef);
        regs.set_gpr(Gpr::R12, 0xfeed);
        regs.system.cr3 = 0x7000;
        regs.tsc = 123_456_789;
        regs.pending_interrupt = Some(0x30);
        regs
    }

    #[test]
    fn homogeneous_pairs_are_rejected() {
        assert_eq!(
            StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Xen),
            Err(TranslateError::Homogeneous(HypervisorKind::Xen))
        );
    }

    #[test]
    fn xen_to_kvm_preserves_every_architectural_value() {
        let tr = xen_to_kvm();
        let regs = busy_regs();
        let src = VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, true));
        let dst = tr.translate_vcpu(&src).unwrap();
        assert!(matches!(dst, VcpuStateBlob::Kvm(_)));
        assert_eq!(dst.to_arch(), regs);
        assert!(dst.is_online());
    }

    #[test]
    fn round_trip_through_both_directions_is_identity() {
        let fwd = xen_to_kvm();
        let back = fwd.reversed();
        let regs = busy_regs();
        let src = VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, false));
        let there = fwd.translate_vcpu(&src).unwrap();
        let back_again = back.translate_vcpu(&there).unwrap();
        assert_eq!(back_again.to_arch(), regs);
        assert!(!back_again.is_online());
    }

    #[test]
    fn wrong_source_format_is_refused() {
        let tr = xen_to_kvm();
        let kvm_blob = VcpuStateBlob::Kvm(KvmVcpuState::from_arch(&ArchRegs::default(), true));
        assert_eq!(
            tr.translate_vcpu(&kvm_blob),
            Err(TranslateError::FormatMismatch {
                expected: HypervisorKind::Xen,
                got: HypervisorKind::Kvm,
            })
        );
    }

    #[test]
    fn device_translation_switches_models_and_resets_rings() {
        let tr = xen_to_kvm();
        let mut xen_devs = standard_device_set(HypervisorKind::Xen);
        xen_devs[0].complete_io(10);
        let kvm_devs = tr.translate_devices(&xen_devs);
        assert_eq!(kvm_devs.len(), xen_devs.len());
        for (x, k) in xen_devs.iter().zip(&kvm_devs) {
            assert_eq!(k.identity, x.identity);
            assert_eq!(k.model.family(), HypervisorKind::Kvm);
            assert!(matches!(k.ring, RingState::Vring { .. }));
            assert!(k.ring.is_quiescent());
        }
    }
}
