//! # here-simnet — virtual-time network substrate
//!
//! The network model of the HERE reproduction. The paper's testbed uses two
//! separate networks (§8.1): a 100 Gb/s Omni-Path interconnect reserved for
//! migration/replication, and a 10 GbE adapter for VM client traffic. This
//! crate models both as [`link::Link`]s with bandwidth, propagation latency
//! and failure state, and provides the outgoing-I/O buffer
//! ([`buffer::IoBuffer`]) that gives asynchronous state replication its
//! consistency guarantee — and its client-visible latency cost (Fig. 17).
//!
//! ## Example
//!
//! ```
//! use here_simnet::buffer::IoBuffer;
//! use here_simnet::link::Link;
//! use here_sim_core::rate::ByteSize;
//! use here_sim_core::time::SimTime;
//!
//! let repl_link = Link::omni_path_100g();
//! let mut io = IoBuffer::new();
//! io.enqueue(ByteSize::from_bytes(1400), SimTime::ZERO);
//! // ... checkpoint copies state over repl_link, then commits:
//! let released = io.release_all(SimTime::from_secs(3));
//! assert_eq!(released.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod link;

pub use buffer::{IoBuffer, Packet, ReleasedPacket};
pub use link::Link;
