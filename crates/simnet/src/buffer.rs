//! Outgoing I/O buffering — the heart of ASR's consistency guarantee.
//!
//! In asynchronous state replication "all outgoing I/O traffic of the
//! primary VM is buffered during the entire execution period T, and only
//! released once the corresponding checkpoint has completed" (§3.2). If the
//! primary dies, unreleased packets are discarded together with the
//! unreplicated execution they witnessed, so external clients never observe
//! state the replica does not have.
//!
//! The buffering delay is exactly what the Sockperf experiment (Fig. 17)
//! measures: client-visible latency under ASR is dominated by how long
//! replies sit in this buffer waiting for the next checkpoint commit.

use serde::{Deserialize, Serialize};

use here_sim_core::rate::ByteSize;
use here_sim_core::time::{SimDuration, SimTime};

/// An outgoing packet produced by the protected VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Monotonic packet id (for tracing).
    pub id: u64,
    /// Payload size.
    pub size: ByteSize,
    /// When the guest emitted the packet.
    pub created_at: SimTime,
}

/// A packet after release, annotated with the buffering delay it suffered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReleasedPacket {
    /// The packet itself.
    pub packet: Packet,
    /// When the commit released it.
    pub released_at: SimTime,
}

impl ReleasedPacket {
    /// Time the packet spent buffered.
    pub fn buffering_delay(&self) -> SimDuration {
        self.released_at
            .saturating_duration_since(self.packet.created_at)
    }
}

/// The outgoing I/O buffer of a replicated VM.
///
/// # Examples
///
/// ```
/// use here_simnet::buffer::IoBuffer;
/// use here_sim_core::rate::ByteSize;
/// use here_sim_core::time::{SimDuration, SimTime};
///
/// let mut buf = IoBuffer::new();
/// buf.enqueue(ByteSize::from_bytes(1400), SimTime::from_secs(1));
/// let released = buf.release_all(SimTime::from_secs(4));
/// assert_eq!(released.len(), 1);
/// assert_eq!(released[0].buffering_delay(), SimDuration::from_secs(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IoBuffer {
    pending: Vec<Packet>,
    next_id: u64,
    buffered_bytes: ByteSize,
    high_watermark: ByteSize,
    total_released: u64,
    total_discarded: u64,
}

impl IoBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        IoBuffer::default()
    }

    /// Buffers one outgoing packet; returns its id.
    pub fn enqueue(&mut self, size: ByteSize, now: SimTime) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(Packet {
            id,
            size,
            created_at: now,
        });
        self.buffered_bytes += size;
        if self.buffered_bytes > self.high_watermark {
            self.high_watermark = self.buffered_bytes;
        }
        id
    }

    /// Number of packets currently held.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Bytes currently held.
    pub fn buffered_bytes(&self) -> ByteSize {
        self.buffered_bytes
    }

    /// The largest byte backlog ever observed (§8.7 resource accounting).
    pub fn high_watermark(&self) -> ByteSize {
        self.high_watermark
    }

    /// Lifetime count of packets released to clients.
    pub fn total_released(&self) -> u64 {
        self.total_released
    }

    /// Lifetime count of packets discarded by failovers.
    pub fn total_discarded(&self) -> u64 {
        self.total_discarded
    }

    /// Checkpoint commit: every buffered packet is released to the outside
    /// world at instant `now`, in emission order.
    pub fn release_all(&mut self, now: SimTime) -> Vec<ReleasedPacket> {
        self.buffered_bytes = ByteSize::ZERO;
        self.total_released += self.pending.len() as u64;
        std::mem::take(&mut self.pending)
            .into_iter()
            .map(|packet| ReleasedPacket {
                packet,
                released_at: now,
            })
            .collect()
    }

    /// Primary failure: buffered packets are discarded — the execution they
    /// witnessed is being rolled back to the last committed checkpoint.
    /// Returns how many packets were lost.
    pub fn discard_all(&mut self) -> usize {
        let lost = self.pending.len();
        self.total_discarded += lost as u64;
        self.pending.clear();
        self.buffered_bytes = ByteSize::ZERO;
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_preserves_emission_order_and_counts_delay() {
        let mut buf = IoBuffer::new();
        buf.enqueue(ByteSize::from_bytes(100), SimTime::from_secs(1));
        buf.enqueue(ByteSize::from_bytes(200), SimTime::from_secs(2));
        assert_eq!(buf.buffered_bytes(), ByteSize::from_bytes(300));
        let out = buf.release_all(SimTime::from_secs(5));
        assert_eq!(out.len(), 2);
        assert!(out[0].packet.id < out[1].packet.id);
        assert_eq!(out[0].buffering_delay(), SimDuration::from_secs(4));
        assert_eq!(out[1].buffering_delay(), SimDuration::from_secs(3));
        assert!(buf.is_empty());
        assert_eq!(buf.buffered_bytes(), ByteSize::ZERO);
        assert_eq!(buf.total_released(), 2);
    }

    #[test]
    fn discard_loses_uncommitted_output() {
        let mut buf = IoBuffer::new();
        for _ in 0..5 {
            buf.enqueue(ByteSize::from_bytes(64), SimTime::ZERO);
        }
        assert_eq!(buf.discard_all(), 5);
        assert!(buf.is_empty());
        assert_eq!(buf.total_discarded(), 5);
        assert_eq!(buf.total_released(), 0);
    }

    #[test]
    fn high_watermark_tracks_peak_backlog() {
        let mut buf = IoBuffer::new();
        buf.enqueue(ByteSize::from_kib(10), SimTime::ZERO);
        buf.release_all(SimTime::ZERO);
        buf.enqueue(ByteSize::from_kib(4), SimTime::ZERO);
        assert_eq!(buf.high_watermark(), ByteSize::from_kib(10));
    }

    #[test]
    fn packet_ids_are_unique_and_monotonic() {
        let mut buf = IoBuffer::new();
        let a = buf.enqueue(ByteSize::from_bytes(1), SimTime::ZERO);
        buf.release_all(SimTime::ZERO);
        let b = buf.enqueue(ByteSize::from_bytes(1), SimTime::ZERO);
        assert!(b > a);
    }
}
