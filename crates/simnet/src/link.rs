//! Point-to-point links with bandwidth, latency, and failure state.

use serde::{Deserialize, Serialize};

use here_sim_core::rate::{Bandwidth, ByteSize};
use here_sim_core::time::SimDuration;

/// A full-duplex point-to-point link.
///
/// Two links matter in the paper's testbed (§8.1): the **replication link**
/// (Omni-Path, 100 Gb/s, reserved for migration/replication) and the
/// **client link** (10 GbE, reserved for VM traffic). Use the named
/// constructors for those.
///
/// # Examples
///
/// ```
/// use here_simnet::link::Link;
/// use here_sim_core::rate::ByteSize;
///
/// let repl = Link::omni_path_100g();
/// let t = repl.transfer_time(ByteSize::from_mib(100));
/// // 100 MiB over 100 Gb/s ≈ 8.4 ms + propagation.
/// assert!(t.as_millis() >= 8 && t.as_millis() <= 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    bandwidth: Bandwidth,
    latency: SimDuration,
    up: bool,
}

impl Link {
    /// Creates a link with the given rate and one-way propagation latency.
    pub fn new(bandwidth: Bandwidth, latency: SimDuration) -> Self {
        Link {
            bandwidth,
            latency,
            up: true,
        }
    }

    /// The testbed's replication interconnect: Intel Omni-Path HFI 100,
    /// 100 Gb/s, intra-rack propagation.
    pub fn omni_path_100g() -> Self {
        Link::new(Bandwidth::from_gbps(100), SimDuration::from_micros(5))
    }

    /// The testbed's client network: Intel X710 10 GbE.
    pub fn ethernet_10g() -> Self {
        Link::new(Bandwidth::from_gbps(10), SimDuration::from_micros(50))
    }

    /// Link rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// `true` while the link carries traffic.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Sets the link's up/down state (failure injection for heartbeat
    /// tests).
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Time for `size` to arrive at the far end: serialisation plus
    /// propagation. Returns [`SimDuration::MAX`] while the link is down —
    /// the payload never arrives.
    pub fn transfer_time(&self, size: ByteSize) -> SimDuration {
        if !self.up {
            return SimDuration::MAX;
        }
        self.bandwidth.transfer_time(size) + self.latency
    }

    /// Round-trip time of a minimal message (e.g. a checkpoint ack).
    pub fn rtt(&self) -> SimDuration {
        if !self.up {
            return SimDuration::MAX;
        }
        self.latency * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_size() {
        let link = Link::ethernet_10g();
        let small = link.transfer_time(ByteSize::from_kib(1));
        let large = link.transfer_time(ByteSize::from_mib(1));
        assert!(large > small);
    }

    #[test]
    fn latency_dominates_tiny_messages() {
        let link = Link::omni_path_100g();
        let t = link.transfer_time(ByteSize::from_bytes(64));
        // 64 B at 100 Gb/s serialises in ~5 ns; propagation is 5 us.
        assert!(t >= SimDuration::from_micros(5));
        assert!(t < SimDuration::from_micros(6));
    }

    #[test]
    fn down_link_never_delivers() {
        let mut link = Link::ethernet_10g();
        link.set_up(false);
        assert_eq!(
            link.transfer_time(ByteSize::from_bytes(1)),
            SimDuration::MAX
        );
        assert_eq!(link.rtt(), SimDuration::MAX);
        link.set_up(true);
        assert!(link.rtt() < SimDuration::from_millis(1));
    }

    #[test]
    fn rtt_is_twice_latency() {
        let link = Link::new(Bandwidth::from_gbps(1), SimDuration::from_micros(30));
        assert_eq!(link.rtt(), SimDuration::from_micros(60));
    }
}
