//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of `rand` 0.8's API that the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`RngCore`], and the
//! [`Rng`] extension methods `gen::<f64>()` / `gen_range`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! portable, and statistically strong for simulation use. It is **not** the
//! CSPRNG the real `StdRng` is; nothing in this workspace needs one (all
//! randomness is simulation-internal and reproducibility is the goal).

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type mirroring `rand::Error`. The stand-in generators are
/// infallible, so this is never constructed; it exists to keep
/// `try_fill_bytes` signatures compatible.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand stand-in error (unreachable)")
    }
}

impl std::error::Error for Error {}

/// The core trait every generator implements, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// Uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; the stand-in never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `Standard` distribution
/// of the real crate, flattened to one trait).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1) — the real crate's method.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Uniform draw in `[0, bound)` via Lemire's widening-multiply method
/// (debiased by rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Unlike the real crate's `StdRng` this is not cryptographically
    /// secure, but it is deterministic, portable, and fast — all this
    /// simulation workspace needs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let w = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mean_of_unit_draws_is_centred() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
