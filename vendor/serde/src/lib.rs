//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names as marker traits and
//! re-exports the no-op derives from the vendored `serde_derive`. The
//! workspace only uses the derives as forward-looking annotations — all
//! real encoding goes through `here-vmstate`'s hand-rolled wire format —
//! so no serializer machinery is needed.

#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
