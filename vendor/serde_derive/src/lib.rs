//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and report
//! types but never actually serialises them (the wire format in
//! `here-vmstate` is hand-rolled). These derives therefore expand to
//! nothing; they exist so `#[derive(Serialize, Deserialize)]` keeps
//! compiling without crates.io access. `attributes(serde)` is declared so
//! any future `#[serde(...)]` field attribute parses rather than erroring.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
