//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`, `any::<T>()`, integer
//! range strategies, tuple strategies, [`collection::vec`],
//! [`array::uniform32`]/[`array::uniform4`], [`option::of`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: each `proptest!` test runs a fixed number of deterministic
//! cases seeded from the test's name, which keeps failures reproducible
//! across runs without any filesystem state.

#![warn(missing_docs)]

/// Test-runner types: config, RNG, and the case-level error.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies while generating a case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG seeded from a stable hash of `name` (the test function
        /// name), so every run of a given test sees the same cases.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest);
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// The stand-in collapses proptest's `ValueTree` machinery into a
    /// single `generate` call — no shrinking.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical "any value" strategy; see [`crate::any`].
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty => $via:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    use rand::RngCore;
                    rng.next_u64() as $via as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                         i8 => u8, i16 => u16, i32 => u32, i64 => u64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`crate::any`].
    #[derive(Debug, Clone)]
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_strategy_for_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize);

    macro_rules! impl_strategy_for_tuples {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_for_tuples! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// Strategy for "any value of `T`", mirroring `proptest::prelude::any`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`uniform4`, `uniform32`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `[S::Value; N]` from one element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// `[T; 4]` strategy.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray { element }
    }

    /// `[T; 32]` strategy.
    pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
        UniformArray { element }
    }
}

/// `Option` strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Strategy generating `Option<S::Value>`, `None` one time in four.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `config.cases` deterministic
/// cases; `prop_assert*` failures abort the case with a panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, err);
                }
            }
        }
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..100, 1u8..=9), v in crate::collection::vec(any::<u16>(), 0..5)) {
            prop_assert!(a < 100);
            prop_assert!((1..=9).contains(&b), "b = {}", b);
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn map_and_arrays(x in (0u32..10).prop_map(|v| v * 2), arr in crate::array::uniform4(any::<u8>()), o in crate::option::of(0usize..3)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(arr.len() == 4);
            if let Some(n) = o {
                prop_assert!(n < 3);
            }
        }
    }

    #[test]
    fn generated_tests_run() {
        ranges_and_tuples();
        map_and_arrays();
    }
}
