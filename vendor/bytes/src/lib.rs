//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `bytes` 1.x used by `here-vmstate`'s wire
//! codec: [`BytesMut`] as a growable big-endian writer, [`Bytes`] as a
//! cheaply-cloneable read cursor over shared storage, and the [`Buf`] /
//! [`BufMut`] traits those types implement. Semantics match the real
//! crate for this subset (big-endian puts/gets, `split_to`, zero-copy
//! `slice`, `freeze`).

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// Read-side trait mirroring `bytes::Buf` for the subset we use.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes one byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

/// Write-side trait mirroring `bytes::BufMut` for the subset we use.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
}

/// Growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Clears the buffer, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Grows the buffer to `new_len`, filling with `value` (mirrors
    /// `Vec::resize`; the real crate exposes the same method).
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Cheaply-cloneable immutable byte view, mirroring `bytes::Bytes`.
///
/// Backed by an `Arc<Vec<u8>>` plus a `[start, end)` window, so `clone`,
/// `slice`, and `split_to` never copy payload bytes.
#[derive(Debug, Clone)]
pub struct Bytes {
    storage: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty view.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes {
            storage: Arc::clone(&self.storage),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Zero-copy sub-view over `range` (relative to this view).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of range"
        );
        Bytes {
            storage: Arc::clone(&self.storage),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Attempts to reclaim the storage as a mutable buffer without
    /// copying, mirroring `bytes::Bytes::try_into_mut`: succeeds only when
    /// this view is the sole owner of the whole allocation; otherwise the
    /// view is handed back unchanged. Buffer pools use this to recycle
    /// encode buffers once a checkpoint stream has been fully consumed.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        if self.start != 0 || self.end != self.storage.len() {
            return Err(self);
        }
        match Arc::try_unwrap(self.storage) {
            Ok(buf) => Ok(BytesMut { buf }),
            Err(storage) => Err(Bytes {
                start: 0,
                end: storage.len(),
                storage,
            }),
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.storage[self.start..self.end]
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let start = self.start;
        self.start += n;
        &self.storage[start..start + n]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            storage: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_front(2).try_into().unwrap())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_front(4).try_into().unwrap())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_front(8).try_into().unwrap())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let src = self.take_front(dst.len());
        dst.copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        w.extend_from_slice(b"tail");
        assert_eq!(w.len(), 1 + 2 + 4 + 8 + 4);

        let mut r = w.freeze();
        assert_eq!(r.remaining(), 19);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_and_slice_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5, 6]);
        let head = b.split_to(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(&*b, &[3, 4, 5, 6]);
        let mid = b.slice(1..3);
        assert_eq!(&*mid, &[4, 5]);
        assert_eq!(mid.to_vec(), vec![4, 5]);
    }

    #[test]
    fn try_into_mut_reclaims_sole_owner() {
        let b = Bytes::from(vec![1, 2, 3]);
        let m = b.try_into_mut().expect("sole owner reclaims");
        assert_eq!(&m[..], &[1, 2, 3]);

        let b = Bytes::from(vec![4, 5, 6]);
        let clone = b.clone();
        assert!(b.try_into_mut().is_err(), "shared storage is not reclaimed");
        drop(clone);

        let mut b = Bytes::from(vec![7, 8, 9]);
        let _head = b.split_to(1);
        assert!(b.try_into_mut().is_err(), "partial view is not reclaimed");
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = BytesMut::with_capacity(64);
        m.extend_from_slice(&[1; 10]);
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
        m[..0].fill(0); // DerefMut compiles
    }

    #[test]
    fn deref_enables_slice_ops() {
        let w = {
            let mut w = BytesMut::new();
            w.extend_from_slice(&[9, 9, 9]);
            w
        };
        assert_eq!(&w[..], &[9, 9, 9]);
        let b = w.freeze();
        assert_eq!(b.iter().sum::<u8>(), 27);
    }
}
