//! Offline stand-in for the `criterion` crate.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros with the same shapes
//! the workspace's benches use. Instead of statistical sampling, each
//! `bench_function` body runs a handful of iterations and prints the mean
//! wall time — enough for `cargo bench` to build, run, and give a rough
//! number without crates.io access.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Iterations per benchmark; a fixed small count instead of criterion's
/// adaptive sampling.
const ITERATIONS: u32 = 3;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in always runs a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in ignores measurement
    /// time budgets.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean wall time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iterations > 0 {
            bencher.elapsed / bencher.iterations
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: mean {:?} over {} iteration(s)",
            self.name, id, mean, bencher.iterations
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            let value = routine();
            self.elapsed += start.elapsed();
            self.iterations += 1;
            drop(value);
        }
    }
}

/// Prevents the optimiser from deleting a benchmarked value, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.measurement_time(Duration::from_secs(30));
        g.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_benches() {
        benches();
    }
}
