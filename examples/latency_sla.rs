//! Client-visible latency under asynchronous state replication.
//!
//! ```text
//! cargo run --release --example latency_sla
//! ```
//!
//! ASR buffers every outgoing packet until the covering checkpoint commits,
//! so a fixed multi-second period (Remus) adds seconds of latency to every
//! reply. HERE's dynamic manager notices that a network-bound VM dirties
//! almost nothing, checkpoints very frequently, and keeps latency two
//! orders of magnitude lower — the Fig. 17 effect, as a what-if for an SLA.

use here::replication::{ReplicationConfig, Scenario};
use here::sim::SimDuration;
use here::workloads::sockperf::SockperfLoad;
use here::workloads::Sockperf;

fn main() {
    let load = SockperfLoad::B; // 1400-byte packets
    println!("sockperf under-load, {} B replies\n", 1400);

    let configs: Vec<(&str, Option<ReplicationConfig>)> = vec![
        ("bare Xen (no protection)", None),
        (
            "Remus, T = 3 s",
            Some(ReplicationConfig::remus(SimDuration::from_secs(3))),
        ),
        (
            "HERE dynamic (D = 40 %, T_max = 3 s)",
            Some(ReplicationConfig::dynamic(0.4, SimDuration::from_secs(3))),
        ),
    ];

    println!(
        "{:<40} {:>12} {:>12} {:>12}",
        "configuration", "mean", "p50", "p99"
    );
    for (label, config) in configs {
        let mut b = Scenario::builder()
            .name(label)
            .vm_memory_mib(512)
            .vcpus(2)
            .workload(Box::new(Sockperf::new(load)))
            .duration(SimDuration::from_secs(90));
        b = match config {
            Some(cfg) => b.config(cfg).warmup_under_load(SimDuration::from_secs(20)),
            None => b.unprotected(),
        };
        let report = b.build().expect("valid scenario").run();
        let lat = &report.packet_latencies;
        println!(
            "{:<40} {:>10.2}ms {:>10.2}ms {:>10.2}ms",
            label,
            lat.mean().unwrap_or(f64::NAN) * 1e3,
            lat.quantile(0.5).unwrap_or(f64::NAN) * 1e3,
            lat.quantile(0.99).unwrap_or(f64::NAN) * 1e3,
        );
    }

    println!(
        "\nEvery configuration above keeps the VM recoverable; only the \
         checkpoint cadence differs.\nA latency SLA in the tens of \
         milliseconds is compatible with HERE's dynamic control,\nbut not \
         with fixed multi-second periods."
    );
}
