//! The paper's headline scenario: a zero-day DoS exploit downs the primary
//! hypervisor; the VM fails over to a *different* hypervisor that the same
//! exploit cannot touch.
//!
//! ```text
//! cargo run --release --example dos_failover
//! ```
//!
//! Runs the same attack twice — once against HERE (Xen primary, KVM/kvmtool
//! secondary) and once against homogeneous Remus-style replication
//! (Xen → Xen) — and re-launches the exploit at the secondary after each
//! failover. Only the heterogeneous pair keeps the service alive.

use here::replication::{FailureCause, FailurePlan, ReplicationConfig, Scenario};
use here::sim::{SimDuration, SimTime};
use here::vulndb::dataset::nvd_corpus;
use here::vulndb::exploit::sample_dos_exploit;
use here::vulndb::Product;
use here::workloads::MemStress;

fn main() {
    // Pick a real(istic) Xen-core DoS-only CVE from the embedded corpus
    // and weaponise it.
    let corpus = nvd_corpus();
    let exploit =
        sample_dos_exploit(&corpus, Product::Xen).expect("the corpus contains Xen host-DoS CVEs");
    println!(
        "attacker holds a zero-day: {} ({:?} via {:?})\n",
        exploit.cve().id,
        exploit.cve().outcome.expect("DoS CVEs have an outcome"),
        exploit.cve().vector
    );

    for (label, config) in [
        (
            "HERE (Xen -> KVM/kvmtool, heterogeneous)",
            ReplicationConfig::fixed_period(SimDuration::from_secs(2)),
        ),
        (
            "Remus (Xen -> Xen, homogeneous)",
            ReplicationConfig::remus(SimDuration::from_secs(2)),
        ),
    ] {
        println!("== {label} ==");
        let report = Scenario::builder()
            .name(label)
            .vm_memory_mib(512)
            .vcpus(2)
            .workload(Box::new(MemStress::with_percent(20).with_rate(20_000)))
            .config(config)
            .duration(SimDuration::from_secs(60))
            .failure(FailurePlan {
                at: SimTime::from_secs(20),
                cause: FailureCause::Exploit(exploit.clone()),
                // After the failover, the attacker fires the SAME exploit
                // at the secondary host.
                reattack_secondary: true,
            })
            .build()
            .expect("valid scenario")
            .run();

        match &report.failover {
            Some(fo) => {
                println!(
                    "  primary downed at t={}, detected {} later, replica resumed in {}",
                    fo.failed_at,
                    fo.detected_at.saturating_duration_since(fo.failed_at),
                    fo.resumption_time()
                );
                println!(
                    "  rolled back: {} buffered packets, {:.0} uncommitted ops; \
                     {} devices switched",
                    fo.packets_lost, fo.ops_lost, fo.devices_switched
                );
                let survived = report.elapsed > SimDuration::from_secs(50);
                println!(
                    "  re-attack on the secondary: service {}",
                    if survived {
                        "SURVIVED (different hypervisor, exploit bounced)"
                    } else {
                        "DOWN (same hypervisor, same vulnerability)"
                    }
                );
            }
            None => println!("  no failover happened (unexpected)"),
        }
        println!();
    }
}
