//! The dynamic checkpoint period manager protecting a database VM.
//!
//! ```text
//! cargo run --release --example adaptive_database
//! ```
//!
//! Runs YCSB Workload A against the in-memory store (client in-VM, as in
//! the paper) under HERE with a 30 % degradation target, and shows how
//! Algorithm 1 settles the checkpoint period so the database loses at most
//! ~30 % throughput while being checkpointed as often as that budget
//! allows.

use here::replication::{ReplicationConfig, Scenario};
use here::sim::SimDuration;
use here::workloads::{Ycsb, YcsbMix, YcsbSpec};

fn main() {
    let spec = YcsbSpec::small(YcsbMix::A);
    println!(
        "YCSB workload A: {} records, {} operations, client running in-VM\n",
        spec.records, spec.operations
    );

    let run = |replicated: bool| {
        let driver = Ycsb::new(spec).expect("valid spec");
        let mem_mib =
            (driver.required_pages() * here::hypervisor::PAGE_SIZE).div_ceil(1024 * 1024) + 64;
        let mut b = Scenario::builder()
            .name("adaptive-database")
            .vm_memory_mib(mem_mib)
            .vcpus(4)
            .workload(Box::new(driver))
            .duration(SimDuration::from_secs(600));
        b = if replicated {
            b.config(ReplicationConfig::dynamic(0.3, SimDuration::from_secs(25)))
                .warmup_under_load(SimDuration::from_secs(60))
        } else {
            b.unprotected()
        };
        b.build().expect("valid scenario").run()
    };

    let baseline = run(false);
    let here = run(true);

    println!("period chosen by Algorithm 1 over the run:");
    let points: Vec<(f64, f64)> = here.period_series.points().collect();
    for (t, period) in points.iter().step_by((points.len() / 10).max(1)) {
        println!("  t = {t:>6.1}s  T = {period:.2}s");
    }

    let slowdown = (baseline.throughput_ops_per_sec - here.throughput_ops_per_sec)
        / baseline.throughput_ops_per_sec
        * 100.0;
    println!(
        "\nbaseline (no replication): {:>8.0} ops/s",
        baseline.throughput_ops_per_sec
    );
    println!(
        "HERE (D = 30 %):           {:>8.0} ops/s",
        here.throughput_ops_per_sec
    );
    println!("observed slowdown:         {slowdown:>7.1} %  (target: 30 %)");
    println!(
        "mean measured degradation: {:>7.1} %",
        here.mean_degradation().unwrap_or(f64::NAN) * 100.0
    );
    println!(
        "checkpoints taken:         {:>8}  (mean {} apart)",
        here.checkpoints.len(),
        here.elapsed / (here.checkpoints.len() as u64).max(1)
    );
}
