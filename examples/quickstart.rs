//! Quickstart: replicate a VM from Xen to KVM and inspect the checkpoints.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 1 GiB / 4 vCPU VM on a simulated Xen host, replicates it to a
//! simulated KVM/kvmtool host with a fixed 3-second checkpoint period while
//! a memory-writing workload runs, and prints what the replication engine
//! measured — including a per-checkpoint consistency proof that the replica
//! is byte-for-byte identical to the primary.

use here::replication::{ReplicationConfig, Scenario};
use here::sim::SimDuration;
use here::workloads::MemStress;

fn main() {
    let report = Scenario::builder()
        .name("quickstart")
        .vm_memory_gib(1)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30)))
        .config(ReplicationConfig::fixed_period(SimDuration::from_secs(3)))
        .duration(SimDuration::from_secs(30))
        .verify_consistency()
        .build()
        .expect("a valid scenario")
        .run();

    let migration = report.migration.as_ref().expect("seeding ran");
    println!("== seeding migration ==");
    println!(
        "  {} iterations, {} pages, total {}, downtime {}",
        migration.iterations.len(),
        migration.pages_sent,
        migration.total,
        migration.downtime
    );

    println!(
        "== continuous replication ({}s virtual) ==",
        report.elapsed.as_millis() / 1000
    );
    for c in &report.checkpoints {
        println!(
            "  checkpoint {:>2}: {:>8} dirty pages, pause {:>10}, degradation {:>5.2}%",
            c.seq,
            c.dirty_pages,
            c.pause.to_string(),
            c.degradation * 100.0
        );
    }
    println!(
        "\nworkload completed {:.0} page-writes at {:.0} ops/s",
        report.ops_completed, report.throughput_ops_per_sec
    );
    println!(
        "replica verified identical to primary at {} checkpoints",
        report.consistency_checks
    );
    assert_eq!(report.consistency_checks, report.checkpoints.len() as u64);
}
